package algebra

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// fakeEnv is a map-backed Env for evaluator tests.
type fakeEnv struct {
	rels  map[string]map[AuxKind]*relation.Relation
	temps map[string]*relation.Relation
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		rels:  make(map[string]map[AuxKind]*relation.Relation),
		temps: make(map[string]*relation.Relation),
	}
}

func (e *fakeEnv) add(r *relation.Relation, aux AuxKind) {
	name := r.Schema().Name
	if e.rels[name] == nil {
		e.rels[name] = make(map[AuxKind]*relation.Relation)
	}
	e.rels[name][aux] = r
}

func (e *fakeEnv) Rel(name string, aux AuxKind) (*relation.Relation, error) {
	m, ok := e.rels[name]
	if !ok {
		return nil, fmt.Errorf("fake: no relation %q", name)
	}
	r, ok := m[aux]
	if !ok {
		return nil, fmt.Errorf("fake: no %v incarnation of %q", aux, name)
	}
	return r, nil
}

func (e *fakeEnv) Temp(name string) (*relation.Relation, error) {
	if r, ok := e.temps[name]; ok {
		return r, nil
	}
	return nil, fmt.Errorf("fake: no temp %q", name)
}

func empSchema() *schema.Relation {
	return schema.MustRelation("emp",
		schema.Attribute{Name: "id", Type: value.KindInt},
		schema.Attribute{Name: "dept", Type: value.KindString},
		schema.Attribute{Name: "sal", Type: value.KindInt},
	)
}

func deptSchema() *schema.Relation {
	return schema.MustRelation("dept",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "budget", Type: value.KindInt},
	)
}

func emp(id int64, dept string, sal int64) relation.Tuple {
	return relation.Tuple{value.Int(id), value.String(dept), value.Int(sal)}
}

func dept(name string, budget int64) relation.Tuple {
	return relation.Tuple{value.String(name), value.Int(budget)}
}

// fixture builds the standard test database: 4 employees, 2 departments.
func fixture(t *testing.T) (*fakeEnv, *TypeEnv) {
	t.Helper()
	es, ds := empSchema(), deptSchema()
	env := newFakeEnv()
	env.add(relation.MustFromTuples(es,
		emp(1, "eng", 100), emp(2, "eng", 200), emp(3, "ops", 150), emp(4, "ghost", 50)), AuxCur)
	env.add(relation.MustFromTuples(ds, dept("eng", 1000), dept("ops", 500)), AuxCur)
	db := schema.MustDatabase(es, ds)
	return env, NewTypeEnv(db)
}

// evalExpr type-checks and evaluates an expression against the fixture.
func evalExpr(t *testing.T, e Expr, env Env, tenv *TypeEnv) *relation.Relation {
	t.Helper()
	if _, err := e.TypeCheck(tenv); err != nil {
		t.Fatalf("TypeCheck(%s): %v", e, err)
	}
	r, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return r
}

func TestSelectEval(t *testing.T) {
	env, tenv := fixture(t)
	e := NewSelect(NewRel("emp"), &Cmp{Op: CmpGT, L: AttrByName("sal"), R: &Const{V: value.Int(120)}})
	r := evalExpr(t, e, env, tenv)
	if r.Len() != 2 {
		t.Errorf("select sal>120: %d tuples, want 2", r.Len())
	}
}

func TestProjectEvalDeduplicates(t *testing.T) {
	env, tenv := fixture(t)
	e := ProjectAttrs(NewRel("emp"), "dept")
	r := evalExpr(t, e, env, tenv)
	if r.Len() != 3 { // eng, ops, ghost
		t.Errorf("project dept: %d tuples, want 3", r.Len())
	}
	if r.Schema().Attrs[0].Name != "dept" {
		t.Errorf("projected attr name = %q", r.Schema().Attrs[0].Name)
	}
}

func TestProjectComputedColumn(t *testing.T) {
	env, tenv := fixture(t)
	e := NewProject(NewRel("emp"),
		[]Scalar{AttrByName("id"), &Arith{Op: value.OpMul, L: AttrByName("sal"), R: &Const{V: value.Int(2)}}},
		[]string{"id", "double"})
	r := evalExpr(t, e, env, tenv)
	for _, tp := range r.SortedTuples() {
		if tp[1].AsInt() != 2*100*tp[0].AsInt() && tp[0].AsInt() == 1 {
			t.Errorf("computed column wrong: %v", tp)
		}
	}
	if r.Schema().Attrs[1].Name != "double" {
		t.Errorf("output name = %q, want double", r.Schema().Attrs[1].Name)
	}
}

func TestJoinInnerHash(t *testing.T) {
	env, tenv := fixture(t)
	// emp ⋈ dept on dept = name: the equi-key path.
	e := NewJoin(NewRel("emp"), NewRel("dept"),
		&Cmp{Op: CmpEQ, L: AttrByIndex(1), R: AttrByIndex(3)})
	r := evalExpr(t, e, env, tenv)
	if r.Len() != 3 { // ghost has no department
		t.Errorf("join: %d tuples, want 3", r.Len())
	}
	if got := r.Schema().Arity(); got != 5 {
		t.Errorf("join output arity = %d, want 5", got)
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	env, tenv := fixture(t)
	// Equi-key plus residual: budget > 600 keeps only eng.
	pred := &And{
		L: &Cmp{Op: CmpEQ, L: AttrByIndex(1), R: AttrByIndex(3)},
		R: &Cmp{Op: CmpGT, L: AttrByIndex(4), R: &Const{V: value.Int(600)}},
	}
	e := NewJoin(NewRel("emp"), NewRel("dept"), pred)
	r := evalExpr(t, e, env, tenv)
	if r.Len() != 2 {
		t.Errorf("join with residual: %d tuples, want 2", r.Len())
	}
}

func TestJoinThetaNoEquiKeys(t *testing.T) {
	env, tenv := fixture(t)
	// Pure inequality join exercises the nested-loop path.
	e := NewJoin(NewRel("emp"), NewRel("dept"),
		&Cmp{Op: CmpGT, L: AttrByIndex(2), R: AttrByIndex(4)})
	r := evalExpr(t, e, env, tenv)
	// sal > budget: no emp salary beats 500 or 1000 → 0 tuples.
	if r.Len() != 0 {
		t.Errorf("theta join: %d tuples, want 0", r.Len())
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	env, tenv := fixture(t)
	pred := &Cmp{Op: CmpEQ, L: AttrByIndex(1), R: AttrByIndex(3)}
	semi := evalExpr(t, NewSemiJoin(NewRel("emp"), NewRel("dept"), CloneScalar(pred)), env, tenv)
	anti := evalExpr(t, NewAntiJoin(NewRel("emp"), NewRel("dept"), CloneScalar(pred)), env, tenv)
	if semi.Len() != 3 {
		t.Errorf("semijoin: %d, want 3", semi.Len())
	}
	if anti.Len() != 1 {
		t.Errorf("antijoin: %d, want 1", anti.Len())
	}
	got := anti.SortedTuples()[0]
	if !got[1].Equal(value.String("ghost")) {
		t.Errorf("antijoin survivor = %v, want the ghost-department employee", got)
	}
	// semi ∪ anti = emp
	semi.UnionInPlace(anti)
	cur, _ := env.Rel("emp", AuxCur)
	if !semi.Equal(cur) {
		t.Error("semijoin ∪ antijoin ≠ input")
	}
}

func TestJoinEmptyShortCircuits(t *testing.T) {
	env, tenv := fixture(t)
	env.add(relation.New(deptSchema().Clone("empty")), AuxCur)
	tenvDB := schema.MustDatabase(empSchema(), deptSchema(), deptSchema().Clone("empty"))
	tenv = NewTypeEnv(tenvDB)

	pred := &Cmp{Op: CmpEQ, L: AttrByIndex(1), R: AttrByIndex(3)}
	anti := evalExpr(t, NewAntiJoin(NewRel("emp"), NewRel("empty"), CloneScalar(pred)), env, tenv)
	if anti.Len() != 4 {
		t.Errorf("antijoin vs empty: %d, want all 4", anti.Len())
	}
	semi := evalExpr(t, NewSemiJoin(NewRel("emp"), NewRel("empty"), CloneScalar(pred)), env, tenv)
	if semi.Len() != 0 {
		t.Errorf("semijoin vs empty: %d, want 0", semi.Len())
	}
}

func TestProductViaNilPredicate(t *testing.T) {
	env, tenv := fixture(t)
	e := NewJoin(NewRel("emp"), NewRel("dept"), nil)
	r := evalExpr(t, e, env, tenv)
	if r.Len() != 8 { // 4 × 2
		t.Errorf("product: %d tuples, want 8", r.Len())
	}
}

func TestSetOps(t *testing.T) {
	env, tenv := fixture(t)
	hi := NewSelect(NewRel("emp"), &Cmp{Op: CmpGE, L: AttrByName("sal"), R: &Const{V: value.Int(150)}})
	eng := NewSelect(NewRel("emp"), &Cmp{Op: CmpEQ, L: AttrByName("dept"), R: &Const{V: value.String("eng")}})

	union := evalExpr(t, NewUnion(CloneExpr(hi), CloneExpr(eng)), env, tenv)
	if union.Len() != 3 { // {2,3} ∪ {1,2}
		t.Errorf("union: %d, want 3", union.Len())
	}
	diff := evalExpr(t, NewDiff(CloneExpr(hi), CloneExpr(eng)), env, tenv)
	if diff.Len() != 1 {
		t.Errorf("diff: %d, want 1", diff.Len())
	}
	inter := evalExpr(t, NewIntersect(CloneExpr(hi), CloneExpr(eng)), env, tenv)
	if inter.Len() != 1 {
		t.Errorf("intersect: %d, want 1", inter.Len())
	}
}

func TestSetOpIncompatibleSchemas(t *testing.T) {
	_, tenv := fixture(t)
	e := NewUnion(NewRel("emp"), NewRel("dept"))
	if _, err := e.TypeCheck(tenv); err == nil {
		t.Error("union of incompatible schemas type-checked")
	}
}

func TestAggregates(t *testing.T) {
	env, tenv := fixture(t)
	cases := []struct {
		f    AggFunc
		want value.Value
	}{
		{AggSum, value.Int(500)},
		{AggAvg, value.Float(125)},
		{AggMin, value.Int(50)},
		{AggMax, value.Int(200)},
		{AggCnt, value.Int(4)},
	}
	for _, c := range cases {
		var e Expr
		if c.f == AggCnt {
			e = NewCount(NewRel("emp"))
		} else {
			e = NewAggregate(NewRel("emp"), c.f, AttrByName("sal"), "")
		}
		r := evalExpr(t, e, env, tenv)
		if r.Len() != 1 {
			t.Fatalf("%s: %d tuples, want 1", c.f, r.Len())
		}
		got := r.SortedTuples()[0][0]
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestAggregatesOverEmpty(t *testing.T) {
	es := empSchema().Clone("none")
	env := newFakeEnv()
	env.add(relation.New(es), AuxCur)
	tenv := NewTypeEnv(schema.MustDatabase(es))

	checks := []struct {
		f    AggFunc
		want value.Value
	}{
		{AggCnt, value.Int(0)},
		{AggSum, value.Int(0)},
		{AggAvg, value.Null()},
		{AggMin, value.Null()},
		{AggMax, value.Null()},
	}
	for _, c := range checks {
		var e Expr
		if c.f == AggCnt {
			e = NewCount(NewRel("none"))
		} else {
			e = NewAggregate(NewRel("none"), c.f, AttrByName("sal"), "")
		}
		r := evalExpr(t, e, env, tenv)
		got := r.SortedTuples()[0][0]
		if !got.Equal(c.want) {
			t.Errorf("%s over empty = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestAggregateIgnoresNulls(t *testing.T) {
	es := schema.MustRelation("n",
		schema.Attribute{Name: "v", Type: value.KindInt})
	r := relation.New(es)
	r.InsertUnchecked(relation.Tuple{value.Int(10)})
	r.InsertUnchecked(relation.Tuple{value.Null()})
	env := newFakeEnv()
	env.add(r, AuxCur)
	tenv := NewTypeEnv(schema.MustDatabase(es))

	e := NewAggregate(NewRel("n"), AggAvg, AttrByIndex(0), "")
	out := evalExpr(t, e, env, tenv)
	got := out.SortedTuples()[0][0]
	if !got.Equal(value.Float(10)) {
		t.Errorf("AVG with null = %v, want 10 (nulls ignored)", got)
	}
}

func TestRename(t *testing.T) {
	env, tenv := fixture(t)
	e := NewRename(NewRel("dept"), "d2", []string{"dname", "dbudget"})
	r := evalExpr(t, e, env, tenv)
	if r.Schema().Name != "d2" || r.Schema().Attrs[0].Name != "dname" {
		t.Errorf("rename schema = %s", r.Schema())
	}
	if r.Len() != 2 {
		t.Errorf("rename lost tuples: %d", r.Len())
	}
	bad := NewRename(NewRel("dept"), "d3", []string{"only-one"})
	if _, err := bad.TypeCheck(tenv); err == nil {
		t.Error("rename with wrong attr count type-checked")
	}
}

func TestTempResolution(t *testing.T) {
	env, tenv := fixture(t)
	tmp := relation.MustFromTuples(deptSchema().Clone("t1"), dept("x", 1))
	env.temps["t1"] = tmp
	tenv.SetTemp("t1", tmp.Schema())
	r := evalExpr(t, NewTemp("t1"), env, tenv)
	if r.Len() != 1 {
		t.Errorf("temp eval: %d, want 1", r.Len())
	}
	if _, err := NewTemp("nope").TypeCheck(tenv); err == nil {
		t.Error("unknown temp type-checked")
	}
}

func TestLitTypeChecking(t *testing.T) {
	_, tenv := fixture(t)
	ds := deptSchema()
	ok := NewLit(ds, dept("x", 1))
	if _, err := ok.TypeCheck(tenv); err != nil {
		t.Errorf("valid literal rejected: %v", err)
	}
	badArity := NewLit(ds, relation.Tuple{value.String("x")})
	if _, err := badArity.TypeCheck(tenv); err == nil {
		t.Error("wrong-arity literal accepted")
	}
	badType := NewLit(ds, relation.Tuple{value.Int(1), value.Int(2)})
	if _, err := badType.TypeCheck(tenv); err == nil {
		t.Error("wrong-typed literal accepted")
	}
	withNull := NewLit(ds, relation.Tuple{value.String("x"), value.Null()})
	if _, err := withNull.TypeCheck(tenv); err != nil {
		t.Errorf("null literal rejected: %v", err)
	}
}

func TestUnknownRelationAndAttr(t *testing.T) {
	_, tenv := fixture(t)
	if _, err := NewRel("nope").TypeCheck(tenv); err == nil {
		t.Error("unknown relation type-checked")
	}
	e := NewSelect(NewRel("emp"), &Cmp{Op: CmpGT, L: AttrByName("nope"), R: &Const{V: value.Int(0)}})
	if _, err := e.TypeCheck(tenv); err == nil {
		t.Error("unknown attribute type-checked")
	}
	e2 := NewSelect(NewRel("emp"), AttrByName("sal")) // non-boolean predicate
	if _, err := e2.TypeCheck(tenv); err == nil {
		t.Error("non-boolean selection predicate type-checked")
	}
}

func TestConcatSchemaQualifiesDuplicates(t *testing.T) {
	_, tenv := fixture(t)
	e := NewJoin(NewRel("emp"), NewRel("emp"), nil)
	out, err := e.TypeCheck(tenv)
	if err != nil {
		t.Fatal(err)
	}
	names := out.AttrNames()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate attribute %q in concat schema %v", n, names)
		}
		seen[n] = true
	}
	if !strings.Contains(strings.Join(names, ","), "emp.id") {
		t.Errorf("expected qualified name in %v", names)
	}
}

func TestCloneExprIndependence(t *testing.T) {
	_, tenv := fixture(t)
	orig := NewSelect(NewRel("emp"), &Cmp{Op: CmpGT, L: AttrByName("sal"), R: &Const{V: value.Int(0)}})
	clone := CloneExpr(orig)
	if _, err := clone.TypeCheck(tenv); err != nil {
		t.Fatalf("clone TypeCheck: %v", err)
	}
	// The original must still be unbound (its Attr index untouched).
	attr := orig.Pred.(*Cmp).L.(*Attr)
	if attr.Index != -1 {
		t.Errorf("CloneExpr shared scalar state: original index = %d", attr.Index)
	}
	if clone.String() != orig.String() {
		t.Errorf("clone text %q != original %q", clone.String(), orig.String())
	}
}
