package algebra

import (
	"math"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// RangeBound is one endpoint of a range predicate: a constant and whether
// the comparison admits equality.
type RangeBound struct {
	V    value.Value
	Incl bool
}

// RangeProbeEnv is the optional extension of Env implemented by
// environments backed by ordered secondary indexes (the transaction overlay
// over an indexed snapshot). The evaluator uses it to turn comparison
// conjuncts — <, <=, >, >= against constants, including the negated forms
// enforcement guards arrive in — into bounded range probes: instead of
// materializing a base relation, it scans only the key interval the
// predicate names, and the environment records an interval read, shrinking
// the optimistic conflict footprint from the whole relation to the probed
// interval.
type RangeProbeEnv interface {
	Env
	// OrderedIndexFor returns the column list of an ordered index on the
	// named base relation usable for a range probe: every leading column up
	// to prefix has an equality binding in eq, and the column at position
	// prefix is boundCol. ok is false when the incarnation is not indexed
	// (only the current and pre-transaction states are) or no ordered index
	// qualifies.
	OrderedIndexFor(name string, aux AuxKind, eq map[int]bool, boundCol int) (idx []int, prefix int, ok bool)
	// RangeProbe returns the tuples of the incarnation whose idx[:prefix]
	// columns equal eqVals (parallel to idx[:prefix]) and whose idx[prefix]
	// column satisfies the lo/hi bounds — nil bounds are limited to
	// boundKind's ordered-rank band; includeNull additionally admits null
	// (the negated-comparison case) and includeNaN admits NaN (the
	// inclusive-numeric-comparison case) — recording an interval read. The
	// returned tuples are shared; callers must not mutate them.
	RangeProbe(name string, aux AuxKind, idx []int, prefix int, eqVals []value.Value,
		lo, hi *RangeBound, boundKind value.Kind, includeNull, includeNaN bool) ([]relation.Tuple, error)
}

// rangePlan is one range-probeable column of a selection predicate, bound
// at TypeCheck time: the interval the conjuncts on the column pin down,
// plus whether the conjuncts admit null (negated comparisons do) or NaN
// (inclusive numeric comparisons do — value.Compare answers 0 for NaN
// against any number, so NaN data satisfies <= and >= whatever the bound).
// Candidates are always re-verified with the full predicate, so the plan
// only has to yield a sound superset.
type rangePlan struct {
	col         int
	lo, hi      *RangeBound
	kind        value.Kind // kind of the bounding constants (int/float unify)
	includeNull bool
	includeNaN  bool
	bad         bool // contradictory or incomparable bounds: never probe
}

// extractConstBounds walks a predicate collecting "attr op const" ordering
// comparisons (in either operand order) from its top-level conjunction,
// pushing negation through Not, And and Or — enforcement guards reach the
// evaluator as not(cond), so ¬(qty >= 0) must plan as qty < 0. Because
// ordering against null is false whatever the operator, a negated
// comparison is satisfied by null, which the plan records in includeNull;
// the probe then widens its intervals to cover the null encoding.
//
// Conjuncts on one column intersect (the tightest bound wins). Conjuncts
// the extractor cannot use — null or NaN constants, non-constant operands,
// disjunctions — are simply not used for narrowing, which is sound: the
// probe interval stays a superset of the tuples the full predicate accepts.
// Bounds of incomparable constant kinds mark the column bad (no value
// satisfies both, but Compare would error rather than answer false, so the
// scan path must keep the error semantics). The returned plans are ordered
// by column for deterministic index selection.
func extractConstBounds(pred Scalar) []rangePlan {
	if !ProbeSafe(pred) {
		return nil
	}
	byCol := make(map[int]*rangePlan)
	var walk func(p Scalar, neg bool)
	walk = func(p Scalar, neg bool) {
		switch x := p.(type) {
		case *And:
			if !neg {
				walk(x.L, false)
				walk(x.R, false)
			}
		case *Or:
			if neg { // ¬(a ∨ b) ≡ ¬a ∧ ¬b
				walk(x.L, true)
				walk(x.R, true)
			}
		case *Not:
			walk(x.X, !neg)
		case *Cmp:
			op := x.Op
			attr, aok := x.L.(*Attr)
			lit, lok := x.R.(*Const)
			if !aok || !lok {
				attr, aok = x.R.(*Attr)
				lit, lok = x.L.(*Const)
				op = flipCmp(op) // C op attr  ≡  attr flip(op) C
			}
			if !aok || !lok || attr.Index < 0 {
				return
			}
			if neg {
				op = op.Negate()
			}
			if op == CmpEQ || op == CmpNE {
				return // equality conjuncts are the hash-probe planner's
			}
			v := lit.V
			if v.IsNull() || (v.Kind() == value.KindFloat && math.IsNaN(v.AsFloat())) {
				return // ordering against null/NaN never holds; unusable as a bound
			}
			pl := byCol[attr.Index]
			if pl == nil {
				pl = &rangePlan{col: attr.Index, kind: v.Kind(), includeNull: true, includeNaN: true}
				byCol[attr.Index] = pl
			}
			// A bound whose kind cannot be ordered against the column's data
			// poisons the plan rather than narrowing it: the scan path raises
			// a comparison error for every non-null value, and an index probe
			// over the bound's (empty) kind band would turn that error into a
			// silent empty result.
			if value.OrderedRank(v.Kind()) != value.OrderedRank(pl.kind) ||
				value.OrderedRank(v.Kind()) != value.OrderedRank(attr.kind) {
				pl.bad = true // incomparable kinds: keep scan semantics
				return
			}
			b := &RangeBound{V: v, Incl: op == CmpLE || op == CmpGE}
			switch op {
			case CmpLT, CmpLE:
				pl.hi = tightenBound(pl.hi, b, false, pl)
			case CmpGT, CmpGE:
				pl.lo = tightenBound(pl.lo, b, true, pl)
			}
			// Null satisfies the conjunct only in its negated form; NaN data
			// satisfies it only when the effective operator admits equality
			// (Compare answers 0 for NaN against any number, so NaN <= c and
			// NaN >= c hold while NaN < c and NaN > c do not — negation
			// already folded into op above). There is no exemption for
			// int-declared columns: TypesCompatible admits floats into them,
			// so NaN data is legal there too.
			pl.includeNull = pl.includeNull && neg
			pl.includeNaN = pl.includeNaN && b.Incl
		}
	}
	walk(pred, false)
	// A poisoned column poisons the whole predicate, not just its own
	// plans: the scan path raises its comparison error on every tuple the
	// bad conjunct reaches, and a probe planned on a *different* column
	// whose interval holds no candidates would never run the re-verifier
	// that surfaces it — the query would silently succeed empty.
	for _, pl := range byCol {
		if pl.bad {
			return nil
		}
	}
	plans := make([]rangePlan, 0, len(byCol))
	for _, pl := range byCol {
		if pl.lo == nil && pl.hi == nil {
			continue
		}
		plans = append(plans, *pl)
	}
	for i := 1; i < len(plans); i++ { // insertion sort by column
		for j := i; j > 0 && plans[j-1].col > plans[j].col; j-- {
			plans[j-1], plans[j] = plans[j], plans[j-1]
		}
	}
	return plans
}

// ProbeSafe reports whether evaluating the bound predicate is statically
// guaranteed not to raise an error on any tuple. A probe — hash or range —
// evaluates the predicate only on the candidates its keys or intervals
// admit, while the scan path evaluates it on every tuple; a predicate that
// can error (an incomparable ordering pair like "name < 3" over a string
// column or "name < id", or a division that may hit zero) must therefore
// keep the scan path, or index presence would silently turn the statement's
// error into an empty result. Equality operators never error (Equal accepts
// any kinds), null operands short-circuit to false before Compare runs, and
// Bind has already fixed every operand's static kind, so the check is a
// rank comparison per ordering node plus a division scan.
func ProbeSafe(pred Scalar) bool {
	if pred == nil {
		return true
	}
	switch x := pred.(type) {
	case *Const, *Attr:
		return true
	case *Arith:
		// Division is the one arithmetic that errors at evaluation
		// (operand kinds are Bind-checked, null propagates null).
		return x.Op != value.OpDiv && ProbeSafe(x.L) && ProbeSafe(x.R)
	case *And:
		return ProbeSafe(x.L) && ProbeSafe(x.R)
	case *Or:
		return ProbeSafe(x.L) && ProbeSafe(x.R)
	case *Not:
		return ProbeSafe(x.X)
	case *Cmp:
		if !ProbeSafe(x.L) || !ProbeSafe(x.R) {
			return false
		}
		if x.Op == CmpEQ || x.Op == CmpNE {
			return true
		}
		lr, lok, lnull := staticRank(x.L)
		rr, rok, rnull := staticRank(x.R)
		if lnull || rnull {
			return true // ordering against null evaluates to false, not error
		}
		return lok && rok && lr == rr
	default:
		return false // unknown scalar shapes: assume they may error
	}
}

// staticRank resolves the ordered-rank band of a scalar's statically known
// result kind. isNull marks a literal null (comparable to anything: Cmp
// short-circuits it to false). ok is false when the kind cannot be pinned
// down — the caller must then assume the comparison may error.
func staticRank(p Scalar) (rank byte, ok, isNull bool) {
	switch x := p.(type) {
	case *Const:
		if x.V.IsNull() {
			return 0, true, true
		}
		return value.OrderedRank(x.V.Kind()), true, false
	case *Attr:
		if x.kind == value.KindNull {
			return 0, false, false
		}
		// Column values are of the declared kind or null; null
		// short-circuits, so the declared rank is authoritative.
		return value.OrderedRank(x.kind), true, false
	case *Arith:
		return value.OrderedRankNumber, true, false // Bind enforces numeric operands
	case *Cmp, *And, *Or, *Not:
		return value.OrderedRank(value.KindBool), true, false
	default:
		return 0, false, false
	}
}

// flipCmp mirrors a comparison across its operands: C op attr ≡ attr
// flipCmp(op) C. Equality operators are symmetric.
func flipCmp(op CmpOp) CmpOp {
	switch op {
	case CmpLT:
		return CmpGT
	case CmpLE:
		return CmpGE
	case CmpGT:
		return CmpLT
	case CmpGE:
		return CmpLE
	default:
		return op
	}
}

// tightenBound intersects a new bound into an existing one: for a lower
// bound the greater constant wins, for an upper bound the smaller; equal
// constants keep the stricter (exclusive) form. Incomparable constants mark
// the plan bad.
func tightenBound(old, add *RangeBound, lower bool, pl *rangePlan) *RangeBound {
	if old == nil {
		return add
	}
	c, err := old.V.Compare(add.V)
	if err != nil {
		pl.bad = true
		return old
	}
	switch {
	case c == 0:
		return &RangeBound{V: old.V, Incl: old.Incl && add.Incl}
	case (lower && c < 0) || (!lower && c > 0):
		return add
	default:
		return old
	}
}

// rangeProbeCandidates plans and issues one bounded range probe against a
// base relation: it picks the first plan (by column order) for which the
// environment has an ordered index whose leading columns carry the
// predicate's constant-equality bindings and whose next column is the
// plan's bounded one, and probes it. probed=false means no plan found an
// index and the caller should fall back to its scan path. Both the Select
// evaluator and Update.Exec share this planning step, so the two range
// paths cannot diverge.
func rangeProbeCandidates(pe RangeProbeEnv, name string, aux AuxKind,
	eqCols []int, eqVals []value.Value, plans []rangePlan) ([]relation.Tuple, bool, error) {
	eq := make(map[int]bool, len(eqCols))
	valOf := make(map[int]value.Value, len(eqCols))
	for i, c := range eqCols {
		eq[c] = true
		valOf[c] = eqVals[i]
	}
	for _, rp := range plans {
		idx, prefix, ok := pe.OrderedIndexFor(name, aux, eq, rp.col)
		if !ok {
			continue
		}
		vals := make([]value.Value, prefix)
		for i := 0; i < prefix; i++ {
			vals[i] = valOf[idx[i]]
		}
		out, err := pe.RangeProbe(name, aux, idx, prefix, vals, rp.lo, rp.hi, rp.kind, rp.includeNull, rp.includeNaN)
		return out, err == nil, err
	}
	return nil, false, nil
}

// evalRangeProbe answers a selection over a direct base-relation reference
// through a bounded range probe. The full predicate re-verifies every
// candidate, so the interval — a superset of the matching tuples — is
// sound; the interval read the environment records covers exactly that
// superset. ok=false falls back to the scan path.
func (s *Select) evalRangeProbe(env Env) (*relation.Relation, bool, error) {
	if len(s.ranges) == 0 {
		return nil, false, nil
	}
	r, ok := s.In.(*Rel)
	if !ok || (r.Aux != AuxCur && r.Aux != AuxOld) {
		return nil, false, nil
	}
	pe, ok := env.(RangeProbeEnv)
	if !ok {
		return nil, false, nil
	}
	candidates, probed, err := rangeProbeCandidates(pe, r.Name, r.Aux, s.eqCols, s.eqVals, s.ranges)
	if err != nil || !probed {
		return nil, false, err
	}
	out, err := s.filterCandidates(candidates)
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// filterCandidates re-verifies probed candidates with the full selection
// predicate — the shared final step of the hash-probe and range-probe
// paths, which both yield candidate supersets.
func (s *Select) filterCandidates(candidates []relation.Tuple) (*relation.Relation, error) {
	out := relation.New(s.out)
	for _, t := range candidates {
		keep, err := evalBool(s.Pred, t)
		if err != nil {
			return nil, err
		}
		if keep {
			out.InsertUnchecked(t)
		}
	}
	return out, nil
}

// RangeCompareColumns reports the columns of schema s that pred compares
// against constants with an ordering operator (including under negation),
// deduplicated and ascending. The predicate is cloned and re-bound, so
// unbound (or differently bound) scalars are accepted. It is how the
// translator derives which attributes a comparison-guarded constraint's
// enforcement selections would range-probe, feeding ordered index hints.
func RangeCompareColumns(pred Scalar, s *schema.Relation) ([]int, error) {
	if pred == nil {
		return nil, nil
	}
	p := CloneScalar(pred)
	if _, err := p.Bind(s); err != nil {
		return nil, err
	}
	var cols []int
	for _, pl := range extractConstBounds(p) {
		cols = append(cols, pl.col)
	}
	return cols, nil
}
