// Package views implements materialized view maintenance through
// transaction modification — the application beyond integrity control the
// paper's conclusions point at ("transaction modification can be used for
// purposes other than integrity control as well, like materialized view
// maintenance [8]").
//
// A materialized view is a stored relation defined by an algebra expression
// over base relations. The maintenance program is attached to the rule
// catalog as a non-triggering integrity program whose trigger set is derived
// from the relations the definition reads: any transaction that updates a
// source relation gets the maintenance statements appended by the ordinary
// modification algorithm, so the view is consistent at every transaction
// boundary — exactly the guarantee integrity enforcement receives.
//
// Two maintenance strategies are provided:
//
//   - recompute: delete the view contents and re-evaluate the definition
//     (always applicable);
//   - incremental: for definitions of the select/project-over-one-relation
//     shape, apply σ/π to the transaction's ins/del deltas instead (the
//     view-side analogue of the differential constraint checks).
package views

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/rules"
	"repro/internal/schema"
	"repro/internal/trigger"
)

// Strategy selects how a view is maintained.
type Strategy uint8

// Maintenance strategies.
const (
	// Recompute re-evaluates the definition from scratch on every
	// triggering transaction.
	Recompute Strategy = iota
	// Incremental applies the definition to the transaction's deltas; it
	// falls back to Recompute when the definition is not delta-closed.
	Incremental
)

// String names the strategy.
func (s Strategy) String() string {
	if s == Incremental {
		return "incremental"
	}
	return "recompute"
}

// View is a materialized view definition.
type View struct {
	Name       string
	Definition algebra.Expr
	Strategy   Strategy

	schema      *schema.Relation
	incremental bool
}

// Schema returns the view's output schema (available after Define).
func (v *View) Schema() *schema.Relation { return v.schema }

// IsIncremental reports whether the compiled maintenance program uses
// delta-based statements.
func (v *View) IsIncremental() bool { return v.incremental }

// Define compiles a materialized view against the database schema, registers
// the view's backing relation in the schema, and installs the maintenance
// program into the catalog. The caller must also create the backing relation
// instance in its store (the facade does both). existingViews names the
// already-defined views: definitions may read base relations only — stacking
// views would require maintenance-order analysis the subsystem does not do.
func Define(v *View, db *schema.Database, cat *rules.Catalog, existingViews map[string]bool) (*schema.Relation, error) {
	if v.Name == "" {
		return nil, fmt.Errorf("views: view must have a name")
	}
	if _, exists := db.Relation(v.Name); exists {
		return nil, fmt.Errorf("views: relation %q already exists", v.Name)
	}
	for tr := range sourceTriggers(v.Definition) {
		if existingViews[tr.Rel] {
			return nil, fmt.Errorf("views: view %s reads view %s; views over views are not supported", v.Name, tr.Rel)
		}
	}
	def := algebra.CloneExpr(v.Definition)
	tenv := algebra.NewTypeEnv(db)
	out, err := def.TypeCheck(tenv)
	if err != nil {
		return nil, fmt.Errorf("views: view %s: %w", v.Name, err)
	}
	backing := out.Clone(v.Name)
	if err := db.Add(backing); err != nil {
		return nil, err
	}
	v.schema = backing

	triggers := sourceTriggers(v.Definition)
	if triggers.IsEmpty() {
		db.Remove(v.Name)
		return nil, fmt.Errorf("views: view %s reads no base relations", v.Name)
	}

	prog := v.recomputeProgram()
	if v.Strategy == Incremental {
		if inc, ok := v.incrementalProgram(); ok {
			prog = inc
			v.incremental = true
		}
	}
	tenv2 := algebra.NewTypeEnv(db)
	if err := prog.TypeCheck(tenv2); err != nil {
		db.Remove(v.Name)
		return nil, fmt.Errorf("views: view %s: maintenance program: %w", v.Name, err)
	}

	ip := &rules.IntegrityProgram{
		RuleName:      "view:" + v.Name,
		Triggers:      triggers,
		Full:          prog,
		NonTriggering: true, // writes only the backing relation
	}
	if err := cat.AddProgram(ip); err != nil {
		db.Remove(v.Name)
		return nil, err
	}
	return backing, nil
}

// recomputeProgram is: delete(view, view); insert(view, definition).
func (v *View) recomputeProgram() algebra.Program {
	return algebra.Program{
		&algebra.Delete{Rel: v.Name, Src: algebra.NewRel(v.Name)},
		&algebra.Insert{Rel: v.Name, Src: algebra.CloneExpr(v.Definition)},
	}
}

// incrementalProgram derives delta maintenance for select/project chains
// over a single base relation: inserted source tuples are pushed through
// the definition and added, deleted ones are pushed through and removed.
// Projection makes deletion conservative (a projected tuple may have other
// witnesses), so projection chains additionally re-insert the definition
// image to restore any tuple removed too eagerly — still cheaper than a
// full recompute only for selection-only chains; projections therefore fall
// back to recompute.
func (v *View) incrementalProgram() (algebra.Program, bool) {
	base, ok := selectionChainBase(v.Definition)
	if !ok {
		return nil, false
	}
	insImage := rewriteBaseAux(algebra.CloneExpr(v.Definition), base, algebra.AuxIns)
	delImage := rewriteBaseAux(algebra.CloneExpr(v.Definition), base, algebra.AuxDel)
	return algebra.Program{
		&algebra.Delete{Rel: v.Name, Src: delImage},
		&algebra.Insert{Rel: v.Name, Src: insImage},
	}, true
}

// selectionChainBase reports whether e is a chain of selections over one
// base relation reference and returns that relation's name.
func selectionChainBase(e algebra.Expr) (string, bool) {
	switch x := e.(type) {
	case *algebra.Rel:
		if x.Aux != algebra.AuxCur {
			return "", false
		}
		return x.Name, true
	case *algebra.Select:
		return selectionChainBase(x.In)
	default:
		return "", false
	}
}

// rewriteBaseAux replaces the base relation reference at the bottom of a
// selection chain with the given auxiliary incarnation.
func rewriteBaseAux(e algebra.Expr, base string, aux algebra.AuxKind) algebra.Expr {
	switch x := e.(type) {
	case *algebra.Rel:
		if x.Name == base {
			return algebra.NewAuxRel(base, aux)
		}
		return x
	case *algebra.Select:
		x.In = rewriteBaseAux(x.In, base, aux)
		return x
	default:
		return e
	}
}

// sourceTriggers derives the trigger set of a view definition: INS and DEL
// of every base relation it reads in its current incarnation.
func sourceTriggers(e algebra.Expr) trigger.Set {
	out := trigger.NewSet()
	var walk func(algebra.Expr)
	walk = func(e algebra.Expr) {
		switch x := e.(type) {
		case *algebra.Rel:
			if x.Aux == algebra.AuxCur {
				out.Add(trigger.Trigger{Update: trigger.INS, Rel: x.Name})
				out.Add(trigger.Trigger{Update: trigger.DEL, Rel: x.Name})
			}
		case *algebra.Select:
			walk(x.In)
		case *algebra.Project:
			walk(x.In)
		case *algebra.Rename:
			walk(x.In)
		case *algebra.Join:
			walk(x.L)
			walk(x.R)
		case *algebra.SetExpr:
			walk(x.L)
			walk(x.R)
		case *algebra.Aggregate:
			walk(x.In)
		}
	}
	walk(e)
	return out
}
