package views_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro"
)

func newViewDB(t *testing.T, incremental bool) *repro.DB {
	t.Helper()
	db := repro.Open(nil)
	db.MustCreateRelation(`relation beer(name string, brewery string, alcohol int)`)
	db.MustCreateRelation(`relation brewery(name string, country string)`)
	db.MustDefineView("strong", `select(beer, alcohol >= 8)`, incremental)
	return db
}

func viewRows(t *testing.T, db *repro.DB, name string) int {
	t.Helper()
	n, err := db.Count(name)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestViewMaintainedAcrossTransactions(t *testing.T) {
	for _, incremental := range []bool{false, true} {
		name := "recompute"
		if incremental {
			name = "incremental"
		}
		t.Run(name, func(t *testing.T) {
			db := newViewDB(t, incremental)
			if res, err := db.Submit(`begin
				insert(beer, values[("quad", "x", 10), ("pils", "y", 5), ("imperial", "z", 9)]);
			end`); err != nil || !res.Committed {
				t.Fatalf("insert: res=%+v err=%v", res, err)
			}
			if got := viewRows(t, db, "strong"); got != 2 {
				t.Errorf("strong after inserts = %d, want 2", got)
			}
			if res, err := db.Submit(`begin
				delete(beer, select(beer, name = "quad"));
			end`); err != nil || !res.Committed {
				t.Fatalf("delete: res=%+v err=%v", res, err)
			}
			if got := viewRows(t, db, "strong"); got != 1 {
				t.Errorf("strong after delete = %d, want 1", got)
			}
			if res, err := db.Submit(`begin
				update(beer, name = "pils", [alcohol = 12]);
			end`); err != nil || !res.Committed {
				t.Fatalf("update: res=%+v err=%v", res, err)
			}
			if got := viewRows(t, db, "strong"); got != 2 {
				t.Errorf("strong after update = %d, want 2", got)
			}
		})
	}
}

func TestViewInitialMaterialization(t *testing.T) {
	db := repro.Open(nil)
	db.MustCreateRelation(`relation beer(name string, brewery string, alcohol int)`)
	if res, err := db.Submit(`begin
		insert(beer, values[("quad", "x", 10)]);
	end`); err != nil || !res.Committed {
		t.Fatalf("seed: res=%+v err=%v", res, err)
	}
	db.MustDefineView("strong", `select(beer, alcohol >= 8)`, false)
	if got := viewRows(t, db, "strong"); got != 1 {
		t.Errorf("view not materialized from existing data: %d rows", got)
	}
}

func TestJoinViewRecomputed(t *testing.T) {
	db := newViewDB(t, false)
	db.MustDefineView("located", `project(join(beer, brewery, #2 = #4), #1 as beer, #5 as country)`, true)
	// Incremental was requested but a join definition must fall back.
	if res, err := db.Submit(`begin
		insert(brewery, values[("x", "be")]);
		insert(beer, values[("quad", "x", 10)]);
	end`); err != nil || !res.Committed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	rows, err := db.Query(`located`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][1] != "be" {
		t.Errorf("located = %v", rows.Data)
	}
}

func TestViewAbortRollsBackWithTransaction(t *testing.T) {
	db := newViewDB(t, true)
	db.MustDefineConstraint("pos", `forall x (x in beer implies x.alcohol >= 0)`)
	res, err := db.Submit(`begin
		insert(beer, values[("ghost", "g", 9)]);
		insert(beer, values[("bad", "g", -1)]);
	end`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("violating transaction committed")
	}
	if got := viewRows(t, db, "strong"); got != 0 {
		t.Errorf("view kept aborted tuples: %d", got)
	}
}

func TestViewValidationErrors(t *testing.T) {
	db := newViewDB(t, false)
	if err := db.DefineView("strong", `beer`, false); err == nil {
		t.Error("duplicate view name accepted")
	}
	if err := db.DefineView("meta", `select(strong, alcohol > 9)`, false); err == nil ||
		!strings.Contains(err.Error(), "views over views") {
		t.Errorf("view over view accepted or wrong error: %v", err)
	}
	if err := db.DefineView("vv", `select(nosuch, #1 > 0)`, false); err == nil {
		t.Error("view over unknown relation accepted")
	}
}

// TestIncrementalEqualsRecompute is the maintenance equivalence property:
// under a random transaction stream, the incremental and the recomputed view
// always hold the same contents as evaluating the definition directly.
func TestIncrementalEqualsRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dbs := map[string]*repro.DB{
		"recompute":   newViewDB(t, false),
		"incremental": newViewDB(t, true),
	}
	names := []string{"a", "b", "c", "d", "e"}
	for step := 0; step < 120; step++ {
		var stmt string
		switch rng.Intn(3) {
		case 0, 1:
			stmt = `insert(beer, values[("` + names[rng.Intn(len(names))] + `", "x", ` + itoa(rng.Intn(14)) + `)]);`
		case 2:
			stmt = `delete(beer, select(beer, name = "` + names[rng.Intn(len(names))] + `"));`
		}
		src := "begin " + stmt + " end"
		for which, db := range dbs {
			res, err := db.Submit(src)
			if err != nil {
				t.Fatalf("%s step %d: %v", which, step, err)
			}
			if !res.Committed {
				t.Fatalf("%s step %d aborted: %s", which, step, res.Reason)
			}
		}
		// Both views must equal the definition evaluated fresh.
		for which, db := range dbs {
			want, err := db.Query(`select(beer, alcohol >= 8)`)
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.Query(`strong`)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Data) != len(got.Data) {
				t.Fatalf("%s step %d: view has %d rows, definition %d", which, step, len(got.Data), len(want.Data))
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}
