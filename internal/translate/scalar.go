package translate

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/calculus"
	"repro/internal/schema"
)

// scalarCtx carries the positional layout under which a quantifier-free CL
// condition is translated to a scalar expression: where each tuple
// variable's attributes start in the (possibly concatenated) input tuple,
// and at which column each aggregate term has been materialized.
type scalarCtx struct {
	vars    map[string]varBind
	aggCols map[string]int
}

type varBind struct {
	offset int
	rel    calculus.RelRef
	sch    *schema.Relation
}

func newScalarCtx() *scalarCtx {
	return &scalarCtx{vars: make(map[string]varBind), aggCols: make(map[string]int)}
}

func (c *scalarCtx) bindVar(name string, offset int, rel calculus.RelRef, sch *schema.Relation) {
	c.vars[name] = varBind{offset: offset, rel: rel, sch: sch}
}

func aggKey(t *calculus.TAggr) string { return t.String() }

// collectAggs returns the distinct aggregate terms of w in first-appearance
// order.
func collectAggs(w calculus.WFF) []*calculus.TAggr {
	var out []*calculus.TAggr
	seen := make(map[string]bool)
	calculus.WalkTerms(w, func(t calculus.Term) {
		if a, ok := t.(*calculus.TAggr); ok {
			k := aggKey(a)
			if !seen[k] {
				seen[k] = true
				out = append(out, a)
			}
		}
	})
	return out
}

// appendAggJoins extends base with one single-tuple aggregate relation per
// distinct aggregate term in w (a Cartesian product with a 1-tuple relation
// per term), recording each term's absolute column in ctx. startCol is the
// arity of base. When base is nil the first aggregate relation becomes the
// base itself (pure aggregate constraints).
func appendAggJoins(base algebra.Expr, w calculus.WFF, startCol int, ctx *scalarCtx) (algebra.Expr, error) {
	aggs := collectAggs(w)
	col := startCol
	for _, a := range aggs {
		var e algebra.Expr
		rel := algebra.NewAuxRel(a.Rel.Name, a.Rel.Aux)
		if a.Func == algebra.AggCnt {
			e = algebra.NewCount(rel)
		} else {
			e = algebra.NewAggregate(rel, a.Func, algebra.AttrByIndex(a.Index), "")
		}
		if base == nil {
			base = e
		} else {
			base = algebra.NewJoin(base, e, nil)
		}
		ctx.aggCols[aggKey(a)] = col
		col++
	}
	return base, nil
}

// translateScalar converts a quantifier-free CL sub-formula into an algebra
// scalar over the layout described by ctx. Membership atoms that restate a
// variable's own range are constant-true; any other membership atom is
// outside the supported fragment.
func translateScalar(w calculus.WFF, ctx *scalarCtx) (algebra.Scalar, error) {
	switch x := w.(type) {
	case *calculus.WAtom:
		return translateAtom(x.A, ctx)
	case *calculus.WNot:
		inner, err := translateScalar(x.X, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Not{X: inner}, nil
	case *calculus.WAnd:
		l, err := translateScalar(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := translateScalar(x.R, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.And{L: l, R: r}, nil
	case *calculus.WOr:
		l, err := translateScalar(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := translateScalar(x.R, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Or{L: l, R: r}, nil
	case *calculus.WImplies:
		l, err := translateScalar(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := translateScalar(x.R, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Or{L: &algebra.Not{X: l}, R: r}, nil
	default:
		return nil, fmt.Errorf("quantifier inside a per-tuple condition is not supported")
	}
}

func translateAtom(a calculus.Atom, ctx *scalarCtx) (algebra.Scalar, error) {
	switch x := a.(type) {
	case *calculus.ACompare:
		l, err := translateTerm(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := translateTerm(x.R, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Cmp{Op: x.Op, L: l, R: r}, nil
	case *calculus.ATupleEq:
		xb, ok := ctx.vars[x.X]
		if !ok {
			return nil, fmt.Errorf("tuple comparison on unbound variable %q", x.X)
		}
		yb, ok := ctx.vars[x.Y]
		if !ok {
			return nil, fmt.Errorf("tuple comparison on unbound variable %q", x.Y)
		}
		var conj []algebra.Scalar
		for i := 0; i < xb.sch.Arity(); i++ {
			conj = append(conj, &algebra.Cmp{
				Op: algebra.CmpEQ,
				L:  algebra.AttrByIndex(xb.offset + i),
				R:  algebra.AttrByIndex(yb.offset + i),
			})
		}
		return algebra.AndAll(conj...), nil
	case *calculus.AMember:
		b, ok := ctx.vars[x.Var]
		if !ok {
			return nil, fmt.Errorf("membership atom on unbound variable %q", x.Var)
		}
		if b.rel == x.Rel {
			return algebra.TrueScalar(), nil // restates the variable's range
		}
		return nil, fmt.Errorf("membership %s in %s inside a condition is not supported; use an explicit existential witness (exists y)(y in %s and y == %s)",
			x.Var, x.Rel, x.Rel.Name, x.Var)
	default:
		return nil, fmt.Errorf("unknown atom %T", a)
	}
}

func translateTerm(t calculus.Term, ctx *scalarCtx) (algebra.Scalar, error) {
	switch x := t.(type) {
	case *calculus.TConst:
		return &algebra.Const{V: x.V}, nil
	case *calculus.TAttr:
		b, ok := ctx.vars[x.Var]
		if !ok {
			return nil, fmt.Errorf("attribute selection on unbound variable %q", x.Var)
		}
		return algebra.AttrByIndex(b.offset + x.Index), nil
	case *calculus.TArith:
		l, err := translateTerm(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := translateTerm(x.R, ctx)
		if err != nil {
			return nil, err
		}
		return &algebra.Arith{Op: x.Op, L: l, R: r}, nil
	case *calculus.TAggr:
		col, ok := ctx.aggCols[aggKey(x)]
		if !ok {
			return nil, fmt.Errorf("aggregate %s not materialized for this condition", x)
		}
		return algebra.AttrByIndex(col), nil
	default:
		return nil, fmt.Errorf("unknown term %T", t)
	}
}

// flattenAnd splits nested conjunctions into a flat list.
func flattenAnd(w calculus.WFF) []calculus.WFF {
	if a, ok := w.(*calculus.WAnd); ok {
		return append(flattenAnd(a.L), flattenAnd(a.R)...)
	}
	return []calculus.WFF{w}
}

// usesOnlyVars reports whether every variable referenced by w (attribute
// selections, memberships, tuple comparisons) is in the allowed set.
func usesOnlyVars(w calculus.WFF, allowed map[string]bool) bool {
	ok := true
	calculus.Walk(w, func(n calculus.WFF) bool {
		at, isAtom := n.(*calculus.WAtom)
		if !isAtom {
			return ok
		}
		switch a := at.A.(type) {
		case *calculus.AMember:
			if !allowed[a.Var] {
				ok = false
			}
		case *calculus.ATupleEq:
			if !allowed[a.X] || !allowed[a.Y] {
				ok = false
			}
		}
		return ok
	})
	if !ok {
		return false
	}
	calculus.WalkTerms(w, func(t calculus.Term) {
		if a, isAttr := t.(*calculus.TAttr); isAttr && !allowed[a.Var] {
			ok = false
		}
	})
	return ok
}

// hasAggs reports whether w contains aggregate or counting terms.
func hasAggs(w calculus.WFF) bool { return len(collectAggs(w)) > 0 }
