// Package translate implements the translation of CL constraint conditions
// into extended relational algebra programs guarded by alarm statements —
// the paper's functions TransC and CalcToAlg (Algorithms 5.5-5.6) and the
// construct patterns of Table 1.
//
// The supported fragment is the range-restricted, uniquely-typed-variable
// fragment accepted by calculus.Validate. Within it the translator
// recognizes the constraint classes below; the classification is retained so
// the optimizer (package optimize) can derive differential variants.
package translate

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/calculus"
	"repro/internal/schema"
)

// Class identifies the structural class of a translated constraint
// conjunct. The optimizer keys its differential rewrites on it.
type Class uint8

// Constraint classes.
const (
	// ClassDomain is (∀x)(x∈R [∧ γ(x)] ⇒ c(x)) with c quantifier-free and
	// per-tuple (Table 1 row 1).
	ClassDomain Class = iota
	// ClassReferential is (∀x)(x∈R [∧ γ(x)] ⇒ (∃y)(y∈S ∧ ψ(x,y)))
	// (Table 1 row 2), which covers referential integrity and subset
	// constraints.
	ClassReferential
	// ClassPair is (∀x)(x∈R ⇒ (∀y)(y∈S ⇒ ψ(x,y))) and the flattened
	// (∀x,y)((x∈R ∧ y∈S ∧ c1(x,y)) ⇒ c2(x,y)) (Table 1 rows 3-4).
	ClassPair
	// ClassExistential is (∃x)(x∈R ∧ c(x)) (Table 1 row 5).
	ClassExistential
	// ClassAggregate is a quantifier-free condition over aggregate and
	// counting terms (Table 1 rows 6-7).
	ClassAggregate
	// ClassMixed is a per-tuple condition that also reads aggregates, or any
	// other recognized-but-not-incrementalizable shape; it always gets a
	// full-state check.
	ClassMixed
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassDomain:
		return "domain"
	case ClassReferential:
		return "referential"
	case ClassPair:
		return "pair"
	case ClassExistential:
		return "existential"
	case ClassAggregate:
		return "aggregate"
	case ClassMixed:
		return "mixed"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Part describes one translated conjunct: the alarm program fragment plus
// the structural pieces the optimizer needs to rebuild differential
// variants. Scalars stored here are over the schemas indicated by the class:
//
//   - ClassDomain: Guard and Cond over Rel's schema;
//   - ClassReferential / ClassPair: Guard over Rel, OtherGuard over Other,
//     JoinPred over concat(Rel, Other); Cond unused;
//   - ClassExistential: Cond over Rel;
//   - ClassAggregate / ClassMixed: no reusable pieces (full recheck only).
type Part struct {
	Class      Class
	Rel        calculus.RelRef
	Other      calculus.RelRef
	Guard      algebra.Scalar
	OtherGuard algebra.Scalar
	JoinPred   algebra.Scalar
	Cond       algebra.Scalar
	HasAggs    bool
	Program    algebra.Program
}

// Result is the outcome of translating a full condition: the concatenated
// aborting program and the per-conjunct parts.
type Result struct {
	Program algebra.Program
	Parts   []*Part
}

// Condition translates the (validated) negated-condition check of an
// aborting integrity rule: the produced program raises a ViolationError
// naming constraint iff the condition is false in the state it runs in.
// This is TransC of Algorithm 5.6 extended to conjunctions.
func Condition(w calculus.WFF, info *calculus.Info, db *schema.Database, constraint string) (*Result, error) {
	tr := &translator{info: info, db: db, constraint: constraint}
	conjuncts := splitConjuncts(normalize(w))
	res := &Result{}
	for _, c := range conjuncts {
		part, err := tr.translateConjunct(c)
		if err != nil {
			return nil, fmt.Errorf("translate: constraint %q: %w", constraint, err)
		}
		res.Parts = append(res.Parts, part)
		res.Program = res.Program.Concat(part.Program)
	}
	if len(res.Parts) == 0 {
		return nil, fmt.Errorf("translate: constraint %q: empty condition", constraint)
	}
	return res, nil
}

type translator struct {
	info       *calculus.Info
	db         *schema.Database
	constraint string
}

// normalize applies semantics-preserving rewrites that put formulas into the
// shapes the pattern matcher recognizes: double negation elimination and
// pushing negation through quantifiers.
func normalize(w calculus.WFF) calculus.WFF {
	switch x := w.(type) {
	case *calculus.WNot:
		switch inner := x.X.(type) {
		case *calculus.WNot:
			return normalize(inner.X)
		case *calculus.WQuant:
			// ¬(∀x)B ≡ (∃x)¬B ; ¬(∃x)B ≡ (∀x)¬B
			q := calculus.Exists
			if inner.Q == calculus.Exists {
				q = calculus.Forall
			}
			return normalize(&calculus.WQuant{Q: q, Var: inner.Var, Body: &calculus.WNot{X: inner.Body}})
		case *calculus.WImplies:
			// ¬(A ⇒ B) ≡ A ∧ ¬B
			return normalize(&calculus.WAnd{L: inner.L, R: &calculus.WNot{X: inner.R}})
		case *calculus.WOr:
			// ¬(A ∨ B) ≡ ¬A ∧ ¬B
			return normalize(&calculus.WAnd{
				L: &calculus.WNot{X: inner.L},
				R: &calculus.WNot{X: inner.R},
			})
		default:
			return &calculus.WNot{X: normalize(x.X)}
		}
	case *calculus.WQuant:
		body := normalize(x.Body)
		// ¬(A ∧ B) under a ∀ becomes A ⇒ ¬B when A can serve as a guard.
		if n, ok := body.(*calculus.WNot); ok && x.Q == calculus.Forall {
			if a, ok := n.X.(*calculus.WAnd); ok {
				body = &calculus.WImplies{L: a.L, R: normalize(&calculus.WNot{X: a.R})}
			}
		}
		return &calculus.WQuant{Q: x.Q, Var: x.Var, Body: body}
	case *calculus.WAnd:
		return &calculus.WAnd{L: normalize(x.L), R: normalize(x.R)}
	case *calculus.WOr:
		return &calculus.WOr{L: normalize(x.L), R: normalize(x.R)}
	case *calculus.WImplies:
		return &calculus.WImplies{L: normalize(x.L), R: normalize(x.R)}
	default:
		return w
	}
}

// splitConjuncts splits a top-level conjunction into independently
// translatable constraints, distributing a shared universal prefix:
// (∀x)(A ⇒ (C1 ∧ C2)) becomes (∀x)(A ⇒ C1) and (∀x)(A ⇒ C2).
func splitConjuncts(w calculus.WFF) []calculus.WFF {
	if a, ok := w.(*calculus.WAnd); ok {
		return append(splitConjuncts(a.L), splitConjuncts(a.R)...)
	}
	if q, ok := w.(*calculus.WQuant); ok && q.Q == calculus.Forall {
		if imp, ok := q.Body.(*calculus.WImplies); ok {
			if c, ok := imp.R.(*calculus.WAnd); ok {
				left := &calculus.WQuant{Q: q.Q, Var: q.Var, Body: &calculus.WImplies{L: imp.L, R: c.L}}
				right := &calculus.WQuant{Q: q.Q, Var: q.Var, Body: &calculus.WImplies{L: imp.L, R: c.R}}
				return append(splitConjuncts(left), splitConjuncts(right)...)
			}
		}
	}
	return []calculus.WFF{w}
}

// translateConjunct dispatches one conjunct to the pattern that matches it.
func (t *translator) translateConjunct(w calculus.WFF) (*Part, error) {
	switch x := w.(type) {
	case *calculus.WQuant:
		if x.Q == calculus.Forall {
			return t.translateForall(x)
		}
		return t.translateExists(x)
	default:
		if isQuantifierFree(w) {
			return t.translateAggregate(w)
		}
		return nil, fmt.Errorf("unsupported condition shape %T; see DESIGN.md for the supported fragment", w)
	}
}

func isQuantifierFree(w calculus.WFF) bool {
	free := true
	calculus.Walk(w, func(n calculus.WFF) bool {
		if _, ok := n.(*calculus.WQuant); ok {
			free = false
			return false
		}
		return true
	})
	return free
}

// alarm wraps an expression into an alarm statement program after type
// checking it.
func (t *translator) alarm(e algebra.Expr) (algebra.Program, error) {
	tenv := algebra.NewTypeEnv(t.db)
	if _, err := e.TypeCheck(tenv); err != nil {
		return nil, err
	}
	return algebra.Program{&algebra.Alarm{Expr: e, Constraint: t.constraint}}, nil
}
