package translate_test

import (
	"strings"
	"testing"

	"repro/internal/calculus"
	"repro/internal/lang"
	"repro/internal/schema"
	"repro/internal/translate"
	"repro/internal/value"
)

func testSchema() *schema.Database {
	r := schema.MustRelation("r",
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt},
	)
	s := schema.MustRelation("s",
		schema.Attribute{Name: "k", Type: value.KindInt},
		schema.Attribute{Name: "v", Type: value.KindInt},
	)
	return schema.MustDatabase(r, s)
}

// translateSrc parses, validates and translates a CL constraint.
func translateSrc(t *testing.T, src string) (*translate.Result, error) {
	t.Helper()
	db := testSchema()
	w, err := lang.ParseConstraint(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	info, err := calculus.Validate(w, db)
	if err != nil {
		t.Fatalf("validate %q: %v", src, err)
	}
	return translate.Condition(w, info, db, "C")
}

func mustTranslate(t *testing.T, src string) *translate.Result {
	t.Helper()
	res, err := translateSrc(t, src)
	if err != nil {
		t.Fatalf("translate %q: %v", src, err)
	}
	return res
}

// TestTable1Goldens asserts the exact program text for each Table 1 row.
func TestTable1Goldens(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		class translate.Class
		want  string
	}{
		{"row1-domain",
			`forall x (x in r implies x.a >= 0)`,
			translate.ClassDomain,
			"alarm(select(r, not (a >= 0)));\n"},
		{"row2-referential",
			`forall x (x in r implies exists y (y in s and x.b = y.k))`,
			translate.ClassReferential,
			"alarm(antijoin(r, s, b = k));\n"},
		{"row3-pair-nested",
			`forall x (x in r implies forall y (y in s implies x.a <> y.k))`,
			translate.ClassPair,
			"alarm(semijoin(r, s, not (a <> k)));\n"},
		{"row4-pair-flat",
			`forall x, y ((x in r and y in s and x.a = y.k) implies x.b = y.v)`,
			translate.ClassPair,
			"alarm(semijoin(r, s, (a = k and not (b = v))));\n"},
		{"row5-existential",
			`exists x (x in r and x.a = 0)`,
			translate.ClassExistential,
			"alarm(select(cnt(select(r, a = 0)), CNT = 0));\n"},
		{"row6-aggregate",
			`SUM(r, a) >= 0`,
			translate.ClassAggregate,
			"alarm(select(agg(r, SUM, a), not (SUM >= 0)));\n"},
		{"row7-count",
			`CNT(r) <= 100`,
			translate.ClassAggregate,
			"alarm(select(cnt(r), not (CNT <= 100)));\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := mustTranslate(t, c.src)
			if len(res.Parts) != 1 {
				t.Fatalf("parts = %d, want 1", len(res.Parts))
			}
			if res.Parts[0].Class != c.class {
				t.Errorf("class = %s, want %s", res.Parts[0].Class, c.class)
			}
			if got := res.Program.String(); got != c.want {
				t.Errorf("program:\n got %q\nwant %q", got, c.want)
			}
		})
	}
}

func TestConjunctionSplitsIntoParts(t *testing.T) {
	res := mustTranslate(t,
		`forall x (x in r implies (x.a >= 0 and x.b >= 0))`)
	if len(res.Parts) != 2 {
		t.Fatalf("parts = %d, want 2 (distributed conjunction)", len(res.Parts))
	}
	for _, p := range res.Parts {
		if p.Class != translate.ClassDomain {
			t.Errorf("part class = %s, want domain", p.Class)
		}
	}
	res2 := mustTranslate(t, `SUM(r, a) >= 0 and CNT(s) <= 10`)
	if len(res2.Parts) != 2 {
		t.Fatalf("top-level conjunction parts = %d, want 2", len(res2.Parts))
	}
}

func TestGuardsBecomeSelections(t *testing.T) {
	res := mustTranslate(t,
		`forall x ((x in r and x.a > 5) implies exists y (y in s and x.b = y.k and y.v > 0))`)
	got := res.Program.String()
	if !strings.Contains(got, "antijoin(select(r, a > 5), select(s, v > 0)") {
		t.Errorf("guards not pushed into selections: %s", got)
	}
	p := res.Parts[0]
	if p.Guard == nil || p.OtherGuard == nil {
		t.Error("part guards not recorded")
	}
}

func TestSubsetViaTupleEquality(t *testing.T) {
	// Subset constraints are written with an explicit witness: r ⊆ s.
	res := mustTranslate(t,
		`forall x (x in r implies exists y (y in s and x == y))`)
	got := res.Program.String()
	if !strings.Contains(got, "antijoin(r, s, (a = k and b = v))") {
		t.Errorf("tuple equality not expanded attribute-wise: %s", got)
	}
}

func TestAbsorbDisjunctiveGuard(t *testing.T) {
	res := mustTranslate(t,
		`forall x (x in r implies (x.a < 0 or exists y (y in s and x.b = y.k)))`)
	if res.Parts[0].Class != translate.ClassReferential {
		t.Fatalf("class = %s, want referential (disjunct absorbed)", res.Parts[0].Class)
	}
	got := res.Program.String()
	if !strings.Contains(got, "select(r, not (a < 0))") {
		t.Errorf("negated disjunct not absorbed as guard: %s", got)
	}
}

func TestMixedAggregateDomainClass(t *testing.T) {
	res := mustTranslate(t,
		`forall x (x in r implies x.a <= SUM(s, v))`)
	p := res.Parts[0]
	if p.Class != translate.ClassMixed || !p.HasAggs {
		t.Errorf("class = %s hasAggs=%v, want mixed/true", p.Class, p.HasAggs)
	}
	got := res.Program.String()
	if !strings.Contains(got, "join(r, agg(s, SUM, v))") {
		t.Errorf("aggregate not joined to base: %s", got)
	}
}

func TestTransitionConstraintTranslates(t *testing.T) {
	res := mustTranslate(t,
		`forall x (x in r implies forall y (y in old(r) implies (x.a <> y.a or x.b >= y.b)))`)
	p := res.Parts[0]
	if p.Class != translate.ClassPair {
		t.Errorf("class = %s, want pair", p.Class)
	}
	got := res.Program.String()
	if !strings.Contains(got, "old(r)") {
		t.Errorf("old() reference lost: %s", got)
	}
}

func TestNormalizeNegatedQuantifiers(t *testing.T) {
	// ¬(∃x)(x∈r ∧ x.a < 0) ≡ (∀x)(x∈r ⇒ ¬(a<0)) — a domain constraint.
	res := mustTranslate(t, `not exists x (x in r and x.a < 0)`)
	if res.Parts[0].Class != translate.ClassDomain {
		t.Errorf("class = %s, want domain after negation push", res.Parts[0].Class)
	}
	// ¬(∀x)(x∈r ⇒ x.a<0) ≡ (∃x)(x∈r ∧ ¬(a<0)).
	res2 := mustTranslate(t, `not forall x (x in r implies x.a < 0)`)
	if res2.Parts[0].Class != translate.ClassExistential {
		t.Errorf("class = %s, want existential after negation push", res2.Parts[0].Class)
	}
}

func TestUnsupportedShapesRejected(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"three-level quantifier",
			`forall x (x in r implies exists y (y in s and exists z (z in r and z.a = x.a and y.k = z.b)))`},
		{"aggregate in pair condition",
			`forall x (x in r implies exists y (y in s and x.a = y.k + SUM(r, a)))`},
		{"unguarded forall",
			`forall x (x in r or x.a > 0)`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := translateSrc(t, c.src); err == nil {
				t.Errorf("translated unsupported shape %q", c.src)
			}
		})
	}
}

func TestPartProgramsAreTypeChecked(t *testing.T) {
	res := mustTranslate(t, `forall x (x in r implies x.a >= 0)`)
	// A type-checked alarm has a non-nil schema on its expression.
	al := res.Program[0]
	if al.String() == "" {
		t.Fatal("empty alarm")
	}
}

// TestIndexHintsFromReferential: a referential constraint hints both join
// directions — the referenced relation on its key columns (for the
// insertion-side antijoin) and the referencing relation on its foreign-key
// columns (for the deletion-side semijoin).
func TestIndexHintsFromReferential(t *testing.T) {
	res := mustTranslate(t, `forall x (x in r implies exists y (y in s and x.b = y.k))`)
	hints := translate.IndexHints(res.Parts, testSchema())
	got := map[string]string{}
	for _, h := range hints {
		got[h.Relation] = strings.Join(h.Attrs, ",")
	}
	if got["r"] != "b" || got["s"] != "k" {
		t.Fatalf("hints = %v, want r(b) and s(k)", got)
	}
}

// TestIndexHintsSkipNonJoinClasses: comparison-guarded domain constraints
// hint an ordered index on the compared column (their enforcement
// selections range-probe it); aggregate constraints hint nothing; duplicate
// hints collapse.
func TestIndexHintsSkipNonJoinClasses(t *testing.T) {
	res := mustTranslate(t, `forall x (x in r implies x.a >= 0)`)
	hints := translate.IndexHints(res.Parts, testSchema())
	if len(hints) != 1 || !hints[0].Ordered || hints[0].Relation != "r" ||
		strings.Join(hints[0].Attrs, ",") != "a" {
		t.Fatalf("domain constraint hinted %v, want one ordered r(a)", hints)
	}
	res = mustTranslate(t, `CNT(r) <= 100`)
	if hints := translate.IndexHints(res.Parts, testSchema()); len(hints) != 0 {
		t.Fatalf("aggregate constraint hinted %v", hints)
	}
	// Parts repeating the same join contribute each hint once.
	res = mustTranslate(t, `forall x (x in r implies exists y (y in s and x.b = y.k))`)
	hints = translate.IndexHints(append(append([]*translate.Part{}, res.Parts...), res.Parts...), testSchema())
	if len(hints) != 2 {
		t.Fatalf("duplicate joins produced %d hints: %v", len(hints), hints)
	}
}
