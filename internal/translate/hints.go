package translate

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/schema"
)

// IndexHint names a relation and the attribute columns its enforcement
// expressions access — the schema-driven input to automatic secondary
// indexing. A hash hint (Ordered false) carries the canonical (ascending,
// duplicate-free) equality-join columns; an ordered hint (Ordered true)
// carries a single comparison-guarded column whose declared order is the
// sort order of the ordered index worth building.
type IndexHint struct {
	Relation string
	Columns  []int
	Attrs    []string
	Ordered  bool
}

// IndexHints derives the secondary indexes worth building for a translated
// constraint: for every referential or pair conjunct, the equality-join
// columns of both sides, and for every comparison-guarded domain or
// existential conjunct, an ordered index per compared column. Both join
// directions matter — the referential check antijoin(ins(child), parent)
// probes parent on its key columns, while the deletion-side check
// semijoin(child, del(parent)) probes child on its foreign-key columns —
// and comparison guards ("qty >= threshold") turn their enforcement
// selections into bounded range probes over the ordered hints. Conjuncts
// without usable columns (or whose predicates cannot be re-bound)
// contribute nothing.
func IndexHints(parts []*Part, db *schema.Database) []IndexHint {
	seen := make(map[string]bool)
	var out []IndexHint
	add := func(rel string, cols []int, ordered bool) {
		if len(cols) == 0 {
			return
		}
		rs, ok := db.Relation(rel)
		if !ok {
			return
		}
		canon := append([]int(nil), cols...)
		if !ordered {
			sort.Ints(canon)
			canon = dedupInts(canon)
		}
		key := rel + "\x00"
		if ordered {
			key = rel + "\x00ordered\x00"
		}
		attrs := make([]string, len(canon))
		for i, c := range canon {
			if c < 0 || c >= rs.Arity() {
				return
			}
			attrs[i] = rs.Attrs[c].Name
			key += "," + attrs[i]
		}
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, IndexHint{Relation: rel, Columns: canon, Attrs: attrs, Ordered: ordered})
	}
	addRangeCols := func(rel string, pred algebra.Scalar) {
		if pred == nil {
			return
		}
		rs, ok := db.Relation(rel)
		if !ok {
			return
		}
		cols, err := algebra.RangeCompareColumns(pred, rs)
		if err != nil {
			return
		}
		for _, c := range cols {
			add(rel, []int{c}, true)
		}
	}
	for _, p := range parts {
		switch p.Class {
		case ClassReferential, ClassPair:
			if p.JoinPred == nil {
				continue
			}
			ls, lok := db.Relation(p.Rel.Name)
			rs, rok := db.Relation(p.Other.Name)
			if !lok || !rok {
				continue
			}
			eqL, eqR, err := algebra.EquiJoinColumns(p.JoinPred, ls, rs)
			if err != nil {
				continue
			}
			add(p.Rel.Name, eqL, false)
			add(p.Other.Name, eqR, false)
		case ClassDomain:
			// The enforcement selection applies Guard and ¬Cond; both sides'
			// comparison columns are range-probe candidates.
			addRangeCols(p.Rel.Name, p.Guard)
			addRangeCols(p.Rel.Name, p.Cond)
		case ClassExistential:
			addRangeCols(p.Rel.Name, p.Cond)
		}
	}
	return out
}

// dedupInts removes adjacent duplicates from a sorted slice.
func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
