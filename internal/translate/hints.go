package translate

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/schema"
)

// IndexHint names a relation and the attribute columns its enforcement
// joins equate — the schema-driven input to automatic secondary indexing.
// Columns are canonical: ascending and duplicate-free.
type IndexHint struct {
	Relation string
	Columns  []int
	Attrs    []string
}

// IndexHints derives the secondary indexes worth building for a translated
// constraint: for every referential or pair conjunct, the equality-join
// columns of both sides. Both directions matter — the referential check
// antijoin(ins(child), parent) probes parent on its key columns, while the
// deletion-side check semijoin(child, del(parent)) probes child on its
// foreign-key columns. Conjuncts without equality joins (or whose
// predicates cannot be re-bound) contribute nothing.
func IndexHints(parts []*Part, db *schema.Database) []IndexHint {
	seen := make(map[string]bool)
	var out []IndexHint
	add := func(rel string, cols []int) {
		if len(cols) == 0 {
			return
		}
		rs, ok := db.Relation(rel)
		if !ok {
			return
		}
		canon := append([]int(nil), cols...)
		sort.Ints(canon)
		canon = dedupInts(canon)
		key := rel + "\x00"
		attrs := make([]string, len(canon))
		for i, c := range canon {
			if c < 0 || c >= rs.Arity() {
				return
			}
			attrs[i] = rs.Attrs[c].Name
			key += "," + attrs[i]
		}
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, IndexHint{Relation: rel, Columns: canon, Attrs: attrs})
	}
	for _, p := range parts {
		if p.Class != ClassReferential && p.Class != ClassPair {
			continue
		}
		if p.JoinPred == nil {
			continue
		}
		ls, lok := db.Relation(p.Rel.Name)
		rs, rok := db.Relation(p.Other.Name)
		if !lok || !rok {
			continue
		}
		eqL, eqR, err := algebra.EquiJoinColumns(p.JoinPred, ls, rs)
		if err != nil {
			continue
		}
		add(p.Rel.Name, eqL)
		add(p.Other.Name, eqR)
	}
	return out
}

// dedupInts removes adjacent duplicates from a sorted slice.
func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
