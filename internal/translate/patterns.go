package translate

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/calculus"
	"repro/internal/value"
)

// canonicalizeImplication rewrites the body of a universal quantifier into
// guard conjuncts plus a consequent: Implies(L,R), Or(¬L,R), Or(L,¬R) and
// ¬(L∧R) are all accepted as guarded forms.
func canonicalizeImplication(body calculus.WFF) (guards []calculus.WFF, consequent calculus.WFF, err error) {
	switch x := body.(type) {
	case *calculus.WImplies:
		return flattenAnd(x.L), x.R, nil
	case *calculus.WOr:
		if n, ok := x.L.(*calculus.WNot); ok {
			return flattenAnd(n.X), x.R, nil
		}
		if n, ok := x.R.(*calculus.WNot); ok {
			return flattenAnd(n.X), x.L, nil
		}
		return nil, nil, fmt.Errorf("universal quantifier body must be guarded (R ⇒ ...); got a disjunction without a negated guard")
	case *calculus.WNot:
		if a, ok := x.X.(*calculus.WAnd); ok {
			return flattenAnd(a.L), &calculus.WNot{X: a.R}, nil
		}
		return nil, nil, fmt.Errorf("universal quantifier body must be guarded (R ⇒ ...)")
	case *calculus.WAtom:
		// (∀x)(x ∈ R): trivially true under typed semantics, but accept it as
		// an empty check.
		if m, ok := x.A.(*calculus.AMember); ok {
			return []calculus.WFF{body}, &calculus.WAtom{A: m}, nil
		}
		return nil, nil, fmt.Errorf("universal quantifier body must be guarded (R ⇒ ...)")
	default:
		return nil, nil, fmt.Errorf("universal quantifier body must be guarded (R ⇒ ...); got %T", body)
	}
}

// absorbGuards grows the guard list by rewriting consequent shapes that are
// logically guarded forms:
//
//   - A ⇒ C with quantifier-free A becomes guards ∪ {A} with consequent C;
//   - D1 ∨ ... ∨ Dn ∨ Q with quantifier-free Di and exactly one quantified
//     disjunct Q becomes guards ∪ {¬D1, ..., ¬Dn} with consequent Q.
//
// This lets conditions like (∀x)(x∈R ⇒ (γ(x) ∨ (∃y)(...))) reach the
// referential pattern.
func absorbGuards(guards []calculus.WFF, consequent calculus.WFF) ([]calculus.WFF, calculus.WFF) {
	for {
		switch c := consequent.(type) {
		case *calculus.WImplies:
			if !isQuantifierFree(c.L) {
				return guards, consequent
			}
			guards = append(guards, flattenAnd(c.L)...)
			consequent = c.R
		case *calculus.WOr:
			disjuncts := flattenOr(consequent)
			var quantified calculus.WFF
			var free []calculus.WFF
			for _, d := range disjuncts {
				if isQuantifierFree(d) {
					free = append(free, d)
				} else if quantified == nil {
					quantified = d
				} else {
					return guards, consequent // two quantified disjuncts: give up
				}
			}
			if quantified == nil || len(free) == 0 {
				return guards, consequent
			}
			for _, d := range free {
				guards = append(guards, &calculus.WNot{X: d})
			}
			consequent = quantified
		default:
			return guards, consequent
		}
	}
}

// flattenOr splits nested disjunctions into a flat list.
func flattenOr(w calculus.WFF) []calculus.WFF {
	if o, ok := w.(*calculus.WOr); ok {
		return append(flattenOr(o.L), flattenOr(o.R)...)
	}
	return []calculus.WFF{w}
}

// findMember extracts the membership atom typing var from a guard list,
// returning the remaining guards.
func findMember(guards []calculus.WFF, varName string) (*calculus.AMember, []calculus.WFF, error) {
	var member *calculus.AMember
	var rest []calculus.WFF
	for _, g := range guards {
		if at, ok := g.(*calculus.WAtom); ok {
			if m, ok := at.A.(*calculus.AMember); ok && m.Var == varName && member == nil {
				member = m
				continue
			}
		}
		rest = append(rest, g)
	}
	if member == nil {
		return nil, nil, fmt.Errorf("no membership guard for variable %q", varName)
	}
	return member, rest, nil
}

// guardScalar translates a guard conjunct list over a single variable into
// one scalar (nil when the list is empty).
func (t *translator) guardScalar(guards []calculus.WFF, ctx *scalarCtx) (algebra.Scalar, error) {
	var parts []algebra.Scalar
	for _, g := range guards {
		s, err := translateScalar(g, ctx)
		if err != nil {
			return nil, err
		}
		parts = append(parts, s)
	}
	return algebra.AndAll(parts...), nil
}

// translateForall handles all universally quantified patterns: domain
// constraints, referential constraints, and the two pair forms of Table 1.
func (t *translator) translateForall(q *calculus.WQuant) (*Part, error) {
	x := q.Var
	xi, ok := t.info.Vars[x]
	if !ok {
		return nil, fmt.Errorf("untyped variable %q", x)
	}

	// Two-variable prefix form (Table 1 row 4):
	// (∀x)(∀y)((x∈R ∧ y∈S ∧ c1) ⇒ c2).
	if inner, isQ := q.Body.(*calculus.WQuant); isQ && inner.Q == calculus.Forall {
		guards, consequent, err := canonicalizeImplication(inner.Body)
		if err != nil {
			return nil, err
		}
		return t.pairPart(x, inner.Var, guards, consequent)
	}

	guards, consequent, err := canonicalizeImplication(q.Body)
	if err != nil {
		return nil, err
	}
	member, extra, err := findMember(guards, x)
	if err != nil {
		return nil, err
	}
	extra, consequent = absorbGuards(extra, consequent)

	_ = xi
	switch c := consequent.(type) {
	case *calculus.WQuant:
		if c.Q == calculus.Exists {
			return t.referentialPart(x, member, extra, c)
		}
		// Nested universal (Table 1 row 3): fold into the pair handler.
		innerGuards, innerConsequent, err := canonicalizeImplication(c.Body)
		if err != nil {
			return nil, err
		}
		all := append([]calculus.WFF{&calculus.WAtom{A: member}}, extra...)
		all = append(all, innerGuards...)
		return t.pairPart(x, c.Var, all, innerConsequent)
	default:
		if !isQuantifierFree(consequent) {
			return nil, fmt.Errorf("consequent nests quantifiers deeper than the supported two levels")
		}
		return t.domainPart(x, member, extra, consequent)
	}
}

// domainPart emits alarm(select(R_γ, ¬c')) — Table 1 row 1 — optionally
// extended with aggregate joins when the per-tuple condition reads
// aggregates (which demotes the class to mixed).
func (t *translator) domainPart(x string, member *calculus.AMember, extraGuards []calculus.WFF, consequent calculus.WFF) (*Part, error) {
	xi := t.info.Vars[x]
	ctx := newScalarCtx()
	ctx.bindVar(x, 0, member.Rel, xi.Schema)

	whole := consequent
	for _, g := range extraGuards {
		whole = &calculus.WAnd{L: whole, R: g}
	}
	mixed := hasAggs(whole)

	var base algebra.Expr = algebra.NewAuxRel(member.Rel.Name, member.Rel.Aux)
	base, err := appendAggJoins(base, whole, xi.Schema.Arity(), ctx)
	if err != nil {
		return nil, err
	}
	guard, err := t.guardScalar(extraGuards, ctx)
	if err != nil {
		return nil, err
	}
	cond, err := translateScalar(consequent, ctx)
	if err != nil {
		return nil, err
	}

	expr := base
	if guard != nil {
		expr = algebra.NewSelect(expr, algebra.CloneScalar(guard))
	}
	expr = algebra.NewSelect(expr, &algebra.Not{X: algebra.CloneScalar(cond)})
	prog, err := t.alarm(expr)
	if err != nil {
		return nil, err
	}
	class := ClassDomain
	if mixed {
		class = ClassMixed
	}
	return &Part{
		Class:   class,
		Rel:     member.Rel,
		Guard:   guard,
		Cond:    cond,
		HasAggs: mixed,
		Program: prog,
	}, nil
}

// referentialPart emits alarm(antijoin(R_γ, S_δ, ψ)) — Table 1 row 2. The
// stored JoinPred is the *match* predicate ψ: left tuples with no matching
// right tuple are violations.
func (t *translator) referentialPart(x string, xMember *calculus.AMember, xExtra []calculus.WFF, ex *calculus.WQuant) (*Part, error) {
	y := ex.Var
	yi, ok := t.info.Vars[y]
	if !ok {
		return nil, fmt.Errorf("untyped variable %q", y)
	}
	xi := t.info.Vars[x]
	conj := flattenAnd(ex.Body)
	yMember, rest, err := findMember(conj, y)
	if err != nil {
		return nil, err
	}

	onlyY := map[string]bool{y: true}
	var yGuards, joinConds []calculus.WFF
	for _, c := range rest {
		if !isQuantifierFree(c) {
			return nil, fmt.Errorf("existential witness condition nests quantifiers deeper than the supported two levels")
		}
		if hasAggs(c) {
			return nil, fmt.Errorf("aggregate terms inside quantified pair conditions are not supported")
		}
		if usesOnlyVars(c, onlyY) {
			yGuards = append(yGuards, c)
		} else {
			joinConds = append(joinConds, c)
		}
	}

	// Guards on x restrict the left input.
	xCtx := newScalarCtx()
	xCtx.bindVar(x, 0, xMember.Rel, xi.Schema)
	for _, g := range xExtra {
		if hasAggs(g) {
			return nil, fmt.Errorf("aggregate terms inside quantified pair conditions are not supported")
		}
	}
	xGuard, err := t.guardScalar(xExtra, xCtx)
	if err != nil {
		return nil, err
	}

	yCtx := newScalarCtx()
	yCtx.bindVar(y, 0, yMember.Rel, yi.Schema)
	yGuard, err := t.guardScalar(yGuards, yCtx)
	if err != nil {
		return nil, err
	}

	pairCtx := newScalarCtx()
	pairCtx.bindVar(x, 0, xMember.Rel, xi.Schema)
	pairCtx.bindVar(y, xi.Schema.Arity(), yMember.Rel, yi.Schema)
	match, err := t.guardScalar(joinConds, pairCtx)
	if err != nil {
		return nil, err
	}

	left := relExpr(xMember.Rel, xGuard)
	right := relExpr(yMember.Rel, yGuard)
	expr := algebra.NewAntiJoin(left, right, cloneOrNil(match))
	prog, err := t.alarm(expr)
	if err != nil {
		return nil, err
	}
	return &Part{
		Class:      ClassReferential,
		Rel:        xMember.Rel,
		Other:      yMember.Rel,
		Guard:      xGuard,
		OtherGuard: yGuard,
		JoinPred:   match,
		Program:    prog,
	}, nil
}

// pairPart emits alarm(semijoin(R_γ, S_δ, c1 ∧ ¬c2)) — equivalent in
// alarm-emptiness to Table 1 rows 3-4. The stored JoinPred is the
// *violation* predicate c1 ∧ ¬c2: any matching pair is a violation.
func (t *translator) pairPart(x, y string, guards []calculus.WFF, consequent calculus.WFF) (*Part, error) {
	xi, ok := t.info.Vars[x]
	if !ok {
		return nil, fmt.Errorf("untyped variable %q", x)
	}
	yi, ok := t.info.Vars[y]
	if !ok {
		return nil, fmt.Errorf("untyped variable %q", y)
	}
	xMember, rest, err := findMember(guards, x)
	if err != nil {
		return nil, err
	}
	yMember, rest, err := findMember(rest, y)
	if err != nil {
		return nil, err
	}
	if !isQuantifierFree(consequent) {
		return nil, fmt.Errorf("pair consequent nests quantifiers deeper than the supported two levels")
	}

	onlyX := map[string]bool{x: true}
	onlyY := map[string]bool{y: true}
	var xGuards, yGuards, mixed []calculus.WFF
	for _, c := range rest {
		switch {
		case !isQuantifierFree(c):
			return nil, fmt.Errorf("pair guard nests quantifiers deeper than the supported two levels")
		case hasAggs(c):
			return nil, fmt.Errorf("aggregate terms inside quantified pair conditions are not supported")
		case usesOnlyVars(c, onlyX):
			xGuards = append(xGuards, c)
		case usesOnlyVars(c, onlyY):
			yGuards = append(yGuards, c)
		default:
			mixed = append(mixed, c)
		}
	}
	if hasAggs(consequent) {
		return nil, fmt.Errorf("aggregate terms inside quantified pair conditions are not supported")
	}

	xCtx := newScalarCtx()
	xCtx.bindVar(x, 0, xMember.Rel, xi.Schema)
	xGuard, err := t.guardScalar(xGuards, xCtx)
	if err != nil {
		return nil, err
	}
	yCtx := newScalarCtx()
	yCtx.bindVar(y, 0, yMember.Rel, yi.Schema)
	yGuard, err := t.guardScalar(yGuards, yCtx)
	if err != nil {
		return nil, err
	}

	pairCtx := newScalarCtx()
	pairCtx.bindVar(x, 0, xMember.Rel, xi.Schema)
	pairCtx.bindVar(y, xi.Schema.Arity(), yMember.Rel, yi.Schema)
	c1, err := t.guardScalar(mixed, pairCtx)
	if err != nil {
		return nil, err
	}
	c2, err := translateScalar(consequent, pairCtx)
	if err != nil {
		return nil, err
	}
	violation := algebra.AndAll(c1, &algebra.Not{X: c2})

	left := relExpr(xMember.Rel, xGuard)
	right := relExpr(yMember.Rel, yGuard)
	expr := algebra.NewSemiJoin(left, right, algebra.CloneScalar(violation))
	prog, err := t.alarm(expr)
	if err != nil {
		return nil, err
	}
	return &Part{
		Class:      ClassPair,
		Rel:        xMember.Rel,
		Other:      yMember.Rel,
		Guard:      xGuard,
		OtherGuard: yGuard,
		JoinPred:   violation,
		Program:    prog,
	}, nil
}

// translateExists emits alarm(σ_{CNT=0}(CNT(σ_c'(R)))) — Table 1 row 5: the
// alarm fires when no witness exists.
func (t *translator) translateExists(q *calculus.WQuant) (*Part, error) {
	x := q.Var
	xi, ok := t.info.Vars[x]
	if !ok {
		return nil, fmt.Errorf("untyped variable %q", x)
	}
	conj := flattenAnd(q.Body)
	member, rest, err := findMember(conj, x)
	if err != nil {
		return nil, err
	}
	ctx := newScalarCtx()
	ctx.bindVar(x, 0, member.Rel, xi.Schema)

	whole := calculus.WFF(&calculus.WAtom{A: member})
	for _, c := range rest {
		if !isQuantifierFree(c) {
			return nil, fmt.Errorf("existential body nests quantifiers deeper than the supported two levels")
		}
		whole = &calculus.WAnd{L: whole, R: c}
	}

	var base algebra.Expr = algebra.NewAuxRel(member.Rel.Name, member.Rel.Aux)
	base, err = appendAggJoins(base, whole, xi.Schema.Arity(), ctx)
	if err != nil {
		return nil, err
	}
	cond, err := t.guardScalar(rest, ctx)
	if err != nil {
		return nil, err
	}

	inner := base
	if cond != nil {
		inner = algebra.NewSelect(base, algebra.CloneScalar(cond))
	}
	expr := algebra.NewSelect(
		algebra.NewCount(inner),
		&algebra.Cmp{Op: algebra.CmpEQ, L: algebra.AttrByIndex(0), R: &algebra.Const{V: value.Int(0)}},
	)
	prog, err := t.alarm(expr)
	if err != nil {
		return nil, err
	}
	return &Part{
		Class:   ClassExistential,
		Rel:     member.Rel,
		Cond:    cond,
		HasAggs: hasAggs(whole),
		Program: prog,
	}, nil
}

// translateAggregate emits alarm(σ_{¬c'}(AGG1 × AGG2 × ...)) — Table 1 rows
// 6-7, generalized to boolean combinations of several aggregate terms.
func (t *translator) translateAggregate(w calculus.WFF) (*Part, error) {
	ctx := newScalarCtx()
	base, err := appendAggJoins(nil, w, 0, ctx)
	if err != nil {
		return nil, err
	}
	if base == nil {
		return nil, fmt.Errorf("quantifier-free condition without aggregate terms is constant; refusing to translate")
	}
	cond, err := translateScalar(w, ctx)
	if err != nil {
		return nil, err
	}
	expr := algebra.NewSelect(base, &algebra.Not{X: algebra.CloneScalar(cond)})
	prog, err := t.alarm(expr)
	if err != nil {
		return nil, err
	}
	return &Part{Class: ClassAggregate, HasAggs: true, Program: prog}, nil
}

// relExpr builds R or σ_guard(R) for an auxiliary relation reference.
func relExpr(r calculus.RelRef, guard algebra.Scalar) algebra.Expr {
	var e algebra.Expr = algebra.NewAuxRel(r.Name, r.Aux)
	if guard != nil {
		e = algebra.NewSelect(e, algebra.CloneScalar(guard))
	}
	return e
}

func cloneOrNil(s algebra.Scalar) algebra.Scalar {
	if s == nil {
		return nil
	}
	return algebra.CloneScalar(s)
}
