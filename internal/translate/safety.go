// Static safety analysis — the transaction-modification counterpart of the
// weakest-precondition simplification literature the paper cites: given a
// translated constraint part and the statements of a transaction program,
// decide at modify time which of the part's enforcement checks the
// transaction can possibly make fire. A check proven unreachable is elided
// entirely: no alarm statement is appended, so the transaction records no
// reads for it, issues no probes, and exposes no conflict surface.
//
// Soundness contract: every verdict assumes exactly what the differential
// rewrite in package optimize already assumes — that the committed base
// state satisfies the constraint (which holds inductively when rules are
// defined before data is loaded). Under that invariant, an elided check is
// one that provably evaluates to "no violation" given the statement shapes,
// so removing it cannot change the transaction's outcome. Anything the
// analysis cannot prove falls back to the conservative need for the class.
package translate

import (
	"repro/internal/algebra"
	"repro/internal/schema"
	"repro/internal/value"
)

// Need states which enforcement checks of one constraint part a transaction
// shape requires. The zero value means "safe": no check at all.
type Need struct {
	// SideA is the insert-side differential check: new R tuples for domain,
	// the ins-R antijoin for referential, the ins-R semijoin for pair.
	SideA bool
	// SideB is the second differential check: the del-S re-match for
	// referential, the ins-S semijoin for pair.
	SideB bool
	// Full is the full-state check, used by classes without a differential
	// form (existential, aggregate, mixed, transition).
	Full bool
}

// Safe reports that no check is needed.
func (n Need) Safe() bool { return !n.SideA && !n.SideB && !n.Full }

// Union merges two needs.
func (n Need) Union(m Need) Need {
	return Need{SideA: n.SideA || m.SideA, SideB: n.SideB || m.SideB, Full: n.Full || m.Full}
}

// ConservativeNeed is the class's worst-case need — what an unanalyzed
// transaction requires. It is the verdict for any statement the analysis
// cannot see through.
func ConservativeNeed(p *Part) Need {
	switch p.Class {
	case ClassDomain:
		return Need{SideA: true}
	case ClassReferential, ClassPair:
		return Need{SideA: true, SideB: true}
	default:
		return Need{Full: true}
	}
}

// AnalyzeSafety computes the union of per-statement needs for one part over
// a transaction program's statements. Statements must be plain algebra
// statements (callers unwrap any tagging decorators first).
func AnalyzeSafety(p *Part, db *schema.Database, stmts []algebra.Stmt) Need {
	worst := ConservativeNeed(p)
	var need Need
	for _, st := range stmts {
		need = need.Union(stmtNeed(p, db, st))
		if need == worst {
			return need
		}
	}
	return need
}

// stmtNeed scores one statement against one part.
func stmtNeed(p *Part, db *schema.Database, st algebra.Stmt) Need {
	switch st.(type) {
	case *algebra.Assign, *algebra.Alarm, *algebra.Abort:
		return Need{} // no base-relation writes, no triggers
	}
	switch p.Class {
	case ClassDomain:
		if p.Rel.Aux != algebra.AuxCur || p.HasAggs {
			return touchNeed(p, st)
		}
		return domainNeed(p, db, st)
	case ClassReferential:
		if p.Rel.Aux != algebra.AuxCur || p.Other.Aux != algebra.AuxCur {
			return touchNeed(p, st)
		}
		return referentialNeed(p, db, st)
	case ClassPair:
		if p.Rel.Aux != algebra.AuxCur || p.Other.Aux != algebra.AuxCur {
			return touchNeed(p, st)
		}
		return pairNeed(p, db, st)
	case ClassExistential:
		if p.Rel.Aux != algebra.AuxCur || p.HasAggs {
			return touchNeed(p, st)
		}
		return existentialNeed(p, db, st)
	default:
		return touchNeed(p, st)
	}
}

// touchNeed is relation-footprint disjointness, the coarsest sound test:
// the part needs its full check iff the statement writes a relation the
// part's check program reads.
func touchNeed(p *Part, st algebra.Stmt) Need {
	target, ok := stmtTarget(st)
	if !ok {
		return Need{Full: true}
	}
	if target == "" {
		return Need{}
	}
	reads := make(map[string]bool)
	for _, s := range p.Program {
		if !stmtReadRels(s, reads) {
			return Need{Full: true}
		}
	}
	if reads[target] {
		return Need{Full: true}
	}
	return Need{}
}

// domainNeed: (∀x)(x∈R ∧ γ(x) ⇒ c(x)). Deletes are always harmless; inserts
// of literal rows are evaluated against γ∧¬c at modify time; updates are
// harmless when their set clauses provably preserve γ⇒c per tuple.
func domainNeed(p *Part, db *schema.Database, st algebra.Stmt) Need {
	switch x := st.(type) {
	case *algebra.Insert:
		if x.Rel != p.Rel.Name {
			return Need{}
		}
		if litRowsSatisfy(x.Src, p.Guard, p.Cond) {
			return Need{}
		}
		return Need{SideA: true}
	case *algebra.Delete:
		return Need{} // removing tuples cannot violate a universal per-tuple condition
	case *algebra.Update:
		if x.Rel != p.Rel.Name {
			return Need{}
		}
		if sch, ok := db.Relation(p.Rel.Name); ok && setsPreserve(x, sch, p.Guard, p.Cond) {
			return Need{}
		}
		return Need{SideA: true}
	default:
		return Need{SideA: true}
	}
}

// referentialNeed: (∀x)(x∈R ∧ γ(x) ⇒ (∃y)(y∈S ∧ δ(y) ∧ ψ(x,y))).
// DEL(R) and INS(S) are harmless by monotonicity; INS(R) needs the ins-side
// check unless the rows provably fail γ; DEL(S) needs the del-side check
// unless the rows provably fail δ; updates are harmless when they leave the
// guard and join columns of their side untouched.
func referentialNeed(p *Part, db *schema.Database, st algebra.Stmt) Need {
	var need Need
	leftSch, lok := db.Relation(p.Rel.Name)
	rightSch, rok := db.Relation(p.Other.Name)
	if !lok || !rok {
		return ConservativeNeed(p)
	}
	joinLeft, joinRight, jok := splitJoinCols(p.JoinPred, leftSch.Arity())

	switch x := st.(type) {
	case *algebra.Insert:
		if x.Rel == p.Rel.Name && !litRowsFail(x.Src, p.Guard) {
			need.SideA = true
		}
		// Inserting into S only adds witnesses: harmless.
	case *algebra.Delete:
		if x.Rel == p.Other.Name && !litRowsFail(x.Src, p.OtherGuard) {
			need.SideB = true
		}
		// Deleting from R only removes constrained tuples: harmless.
	case *algebra.Update:
		if x.Rel == p.Rel.Name {
			if !jok || !setsAvoid(x, leftSch, colsUnion(scalarColSet(p.Guard), joinLeft)) {
				need.SideA = true
			}
		}
		if x.Rel == p.Other.Name {
			if !jok || !setsAvoid(x, rightSch, colsUnion(scalarColSet(p.OtherGuard), joinRight)) {
				need.SideB = true
			}
		}
	default:
		return ConservativeNeed(p)
	}
	return need
}

// pairNeed: no pair (x,y) with x∈σ_γ(R), y∈σ_δ(S) satisfies the violation
// predicate. Deletes are harmless on both sides; inserts need the side check
// unless the rows fail the side's guard; updates are harmless when they
// avoid the side's guard and join columns.
func pairNeed(p *Part, db *schema.Database, st algebra.Stmt) Need {
	var need Need
	leftSch, lok := db.Relation(p.Rel.Name)
	rightSch, rok := db.Relation(p.Other.Name)
	if !lok || !rok {
		return ConservativeNeed(p)
	}
	joinLeft, joinRight, jok := splitJoinCols(p.JoinPred, leftSch.Arity())

	switch x := st.(type) {
	case *algebra.Insert:
		if x.Rel == p.Rel.Name && !litRowsFail(x.Src, p.Guard) {
			need.SideA = true
		}
		if x.Rel == p.Other.Name && !litRowsFail(x.Src, p.OtherGuard) {
			need.SideB = true
		}
	case *algebra.Delete:
		// Removing tuples removes violating pairs only.
	case *algebra.Update:
		if x.Rel == p.Rel.Name {
			if !jok || !setsAvoid(x, leftSch, colsUnion(scalarColSet(p.Guard), joinLeft)) {
				need.SideA = true
			}
		}
		if x.Rel == p.Other.Name {
			if !jok || !setsAvoid(x, rightSch, colsUnion(scalarColSet(p.OtherGuard), joinRight)) {
				need.SideB = true
			}
		}
	default:
		return ConservativeNeed(p)
	}
	return need
}

// existentialNeed: (∃x)(x∈R ∧ c(x)). Inserts only add witnesses; deletes of
// literal rows that provably fail c remove no witness; updates that preserve
// c per tuple keep at least one witness alive.
func existentialNeed(p *Part, db *schema.Database, st algebra.Stmt) Need {
	switch x := st.(type) {
	case *algebra.Insert:
		return Need{}
	case *algebra.Delete:
		if x.Rel != p.Rel.Name {
			return Need{}
		}
		if p.Cond != nil && litRowsFail(x.Src, p.Cond) {
			return Need{}
		}
		return Need{Full: true}
	case *algebra.Update:
		if x.Rel != p.Rel.Name {
			return Need{}
		}
		if sch, ok := db.Relation(p.Rel.Name); ok && setsPreserve(x, sch, nil, p.Cond) {
			return Need{}
		}
		return Need{Full: true}
	default:
		return Need{Full: true}
	}
}

// ---- statement shape helpers ----

// stmtTarget returns the base relation a statement writes ("" when it writes
// none); ok=false for unknown statement types.
func stmtTarget(st algebra.Stmt) (string, bool) {
	switch x := st.(type) {
	case *algebra.Insert:
		return x.Rel, true
	case *algebra.Delete:
		return x.Rel, true
	case *algebra.Update:
		return x.Rel, true
	case *algebra.Assign, *algebra.Alarm, *algebra.Abort:
		return "", true
	default:
		return "", false
	}
}

// stmtReadRels collects the base relations a statement's expressions read;
// false when the statement or an expression node is unknown.
func stmtReadRels(st algebra.Stmt, out map[string]bool) bool {
	switch x := st.(type) {
	case *algebra.Assign:
		return exprRels(x.Expr, out)
	case *algebra.Insert:
		return exprRels(x.Src, out)
	case *algebra.Delete:
		return exprRels(x.Src, out)
	case *algebra.Update:
		out[x.Rel] = true
		return true
	case *algebra.Alarm:
		return exprRels(x.Expr, out)
	case *algebra.Abort:
		return true
	default:
		return false
	}
}

// exprRels collects the base relations an expression reads; false when an
// expression node is unknown.
func exprRels(e algebra.Expr, out map[string]bool) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *algebra.Rel:
		out[x.Name] = true
		return true
	case *algebra.Temp, *algebra.Lit:
		return true
	case *algebra.Select:
		return exprRels(x.In, out)
	case *algebra.Project:
		return exprRels(x.In, out)
	case *algebra.Rename:
		return exprRels(x.In, out)
	case *algebra.Join:
		return exprRels(x.L, out) && exprRels(x.R, out)
	case *algebra.SetExpr:
		return exprRels(x.L, out) && exprRels(x.R, out)
	case *algebra.Aggregate:
		return exprRels(x.In, out)
	default:
		return false
	}
}

// litRowsSatisfy reports whether src is a literal relation all of whose rows
// provably satisfy guard ⇒ cond (nil scalars mean true).
func litRowsSatisfy(src algebra.Expr, guard, cond algebra.Scalar) bool {
	lit, ok := src.(*algebra.Lit)
	if !ok {
		return false
	}
	for _, row := range lit.Rows {
		g, ok := evalPred(guard, row)
		if !ok {
			return false
		}
		if !g {
			continue
		}
		c, ok := evalPred(cond, row)
		if !ok || !c {
			return false
		}
	}
	return true
}

// litRowsFail reports whether src is a literal relation all of whose rows
// provably fail pred — i.e. none of them enters the guarded input. A nil
// pred means true, which no row fails.
func litRowsFail(src algebra.Expr, pred algebra.Scalar) bool {
	if pred == nil {
		return false
	}
	lit, ok := src.(*algebra.Lit)
	if !ok {
		return false
	}
	for _, row := range lit.Rows {
		p, ok := evalPred(pred, row)
		if !ok || p {
			return false
		}
	}
	return true
}

// evalPred evaluates a predicate scalar over one tuple with the engine's
// two-valued semantics (null counts as false); ok=false when evaluation
// errors or yields a non-boolean, which callers treat as "cannot prove".
func evalPred(s algebra.Scalar, row []value.Value) (res, ok bool) {
	if s == nil {
		return true, true
	}
	v, err := s.Eval(row)
	if err != nil {
		return false, false
	}
	if v.IsNull() {
		return false, true
	}
	if v.Kind() != value.KindBool {
		return false, false
	}
	return v.AsBool(), true
}

// scalarColSet returns the attribute positions a scalar reads, or nil when
// the scalar contains unresolvable or unknown nodes (callers must then be
// conservative). A nil scalar reads nothing.
func scalarColSet(s algebra.Scalar) map[int]bool {
	out := make(map[int]bool)
	if !scalarCols(s, nil, out) {
		return nil
	}
	return out
}

// scalarCols walks a scalar collecting attribute positions; attribute
// references that are not yet bound are resolved by name against sch when
// provided. Returns false on unknown nodes or unresolvable attributes.
func scalarCols(s algebra.Scalar, sch *schema.Relation, out map[int]bool) bool {
	switch x := s.(type) {
	case nil:
		return true
	case *algebra.Const:
		return true
	case *algebra.Attr:
		if x.Index >= 0 {
			out[x.Index] = true
			return true
		}
		if sch != nil && x.Name != "" {
			if i := sch.AttrIndex(x.Name); i >= 0 {
				out[i] = true
				return true
			}
		}
		return false
	case *algebra.Arith:
		return scalarCols(x.L, sch, out) && scalarCols(x.R, sch, out)
	case *algebra.Cmp:
		return scalarCols(x.L, sch, out) && scalarCols(x.R, sch, out)
	case *algebra.And:
		return scalarCols(x.L, sch, out) && scalarCols(x.R, sch, out)
	case *algebra.Or:
		return scalarCols(x.L, sch, out) && scalarCols(x.R, sch, out)
	case *algebra.Not:
		return scalarCols(x.X, sch, out)
	default:
		return false
	}
}

// splitJoinCols partitions the columns a join predicate reads into left-side
// and right-side positions (right positions shifted back to the right
// schema's own coordinates).
func splitJoinCols(pred algebra.Scalar, leftArity int) (left, right map[int]bool, ok bool) {
	abs := make(map[int]bool)
	if !scalarCols(pred, nil, abs) {
		return nil, nil, false
	}
	left, right = make(map[int]bool), make(map[int]bool)
	for c := range abs {
		if c < leftArity {
			left[c] = true
		} else {
			right[c-leftArity] = true
		}
	}
	return left, right, true
}

func colsUnion(a, b map[int]bool) map[int]bool {
	if a == nil || b == nil {
		return nil // either side unresolvable: poison the union
	}
	out := make(map[int]bool, len(a)+len(b))
	for c := range a {
		out[c] = true
	}
	for c := range b {
		out[c] = true
	}
	return out
}

// setsAvoid reports whether an update's set clauses provably write none of
// the given columns. cols == nil means "unknown set": always false.
func setsAvoid(u *algebra.Update, sch *schema.Relation, cols map[int]bool) bool {
	if cols == nil {
		return false
	}
	for i := range u.Sets {
		col := sch.AttrIndex(u.Sets[i].Attr)
		if col < 0 || cols[col] {
			return false
		}
	}
	return true
}

// setsPreserve proves that applying the update's set clauses to any tuple
// satisfying guard ⇒ cond yields a tuple that still satisfies guard ⇒ cond:
//
//   - a clause writing a column outside guard and cond changes neither;
//   - writing a guard column is never allowed (a tuple could enter the
//     guard with an unchecked condition);
//   - the identity clause (attr = attr) is trivially safe;
//   - a constant clause is safe when cond reads only that column and the
//     constant satisfies it;
//   - for a single-comparison threshold cond (attr op const), an additive
//     clause attr = attr ± k is safe when it moves values away from (or
//     along) the bound — the monotone-direction analysis. Integer overflow
//     cannot fake this: value.Arith rejects wrapping arithmetic, so an
//     overflowing update aborts the transaction before any check matters.
//
// Each target column may be written at most once; duplicate writes bail out.
func setsPreserve(u *algebra.Update, sch *schema.Relation, guard, cond algebra.Scalar) bool {
	gcols := make(map[int]bool)
	if !scalarCols(guard, nil, gcols) {
		return false
	}
	ccols := make(map[int]bool)
	if !scalarCols(cond, nil, ccols) {
		return false
	}
	th, thOK := condThreshold(cond)
	written := make(map[int]bool)
	for i := range u.Sets {
		sc := &u.Sets[i]
		col := sch.AttrIndex(sc.Attr)
		if col < 0 || written[col] {
			return false
		}
		written[col] = true
		if gcols[col] {
			return false
		}
		if !ccols[col] {
			continue
		}
		if isAttrCol(sc.Expr, sch, col) {
			continue // identity
		}
		if k, isConst := constValue(sc.Expr); isConst && len(ccols) == 1 {
			if condSatisfiedAt(cond, col, k) {
				continue
			}
			return false
		}
		if thOK && th.col == col && monotoneSafe(sc.Expr, sch, col, th.op) {
			continue
		}
		return false
	}
	return true
}

// threshold is a single-comparison condition "attr op bound" (attr
// normalized to the left).
type threshold struct {
	col   int
	op    algebra.CmpOp
	bound value.Value
}

// Threshold recognizes cond as a single comparison between one attribute
// and one constant, normalized to "attr op bound". The repair compiler uses
// it to derive clamp values; the analyzer uses it for monotone-direction
// proofs.
func Threshold(cond algebra.Scalar) (col int, op algebra.CmpOp, bound value.Value, ok bool) {
	th, ok := condThreshold(cond)
	return th.col, th.op, th.bound, ok
}

// condThreshold recognizes cond as a single comparison between one attribute
// and one constant.
func condThreshold(cond algebra.Scalar) (threshold, bool) {
	c, ok := cond.(*algebra.Cmp)
	if !ok {
		return threshold{}, false
	}
	if a, ok := c.L.(*algebra.Attr); ok && a.Index >= 0 {
		if k, ok := constValue(c.R); ok {
			return threshold{col: a.Index, op: c.Op, bound: k}, true
		}
	}
	if a, ok := c.R.(*algebra.Attr); ok && a.Index >= 0 {
		if k, ok := constValue(c.L); ok {
			return threshold{col: a.Index, op: flipCmp(c.Op), bound: k}, true
		}
	}
	return threshold{}, false
}

// flipCmp mirrors a comparison across its operands: const op attr becomes
// attr flip(op) const.
func flipCmp(op algebra.CmpOp) algebra.CmpOp {
	switch op {
	case algebra.CmpLT:
		return algebra.CmpGT
	case algebra.CmpLE:
		return algebra.CmpGE
	case algebra.CmpGT:
		return algebra.CmpLT
	case algebra.CmpGE:
		return algebra.CmpLE
	default:
		return op // EQ and NE are symmetric
	}
}

// condSatisfiedAt evaluates a single-column condition with the column set to
// k (all other positions null, which the condition provably does not read).
func condSatisfiedAt(cond algebra.Scalar, col int, k value.Value) bool {
	row := make([]value.Value, col+1)
	for i := range row {
		row[i] = value.Null()
	}
	row[col] = k
	res, ok := evalPred(cond, row)
	return ok && res
}

// monotoneSafe recognizes "attr = attr + k" / "attr = attr - k" clauses
// whose step direction cannot move a value across the threshold bound:
// non-negative steps preserve >= and >, non-positive steps preserve <= and <.
// IEEE float addition is monotone for finite steps, and integer arithmetic
// errors out on overflow, so a committed update really did move the value in
// the claimed direction.
func monotoneSafe(e algebra.Scalar, sch *schema.Relation, col int, op algebra.CmpOp) bool {
	ar, ok := e.(*algebra.Arith)
	if !ok {
		return false
	}
	var k value.Value
	var stepNonNeg, stepNonPos bool
	switch ar.Op {
	case value.OpAdd:
		switch {
		case isAttrCol(ar.L, sch, col):
			k, ok = constValue(ar.R)
		case isAttrCol(ar.R, sch, col):
			k, ok = constValue(ar.L)
		default:
			return false
		}
		f, fok := numericFloat(k)
		if !ok || !fok {
			return false
		}
		stepNonNeg, stepNonPos = f >= 0, f <= 0
	case value.OpSub:
		if !isAttrCol(ar.L, sch, col) {
			return false
		}
		k, ok = constValue(ar.R)
		f, fok := numericFloat(k)
		if !ok || !fok {
			return false
		}
		stepNonNeg, stepNonPos = f <= 0, f >= 0
	default:
		return false
	}
	switch op {
	case algebra.CmpGE, algebra.CmpGT:
		return stepNonNeg
	case algebra.CmpLE, algebra.CmpLT:
		return stepNonPos
	default:
		return false
	}
}

// numericFloat returns the float image of a numeric value; ok=false for
// null and non-numeric kinds (the analyzer may see ill-typed expressions
// that typechecking has not rejected yet).
func numericFloat(v value.Value) (float64, bool) {
	switch v.Kind() {
	case value.KindInt, value.KindFloat:
		return v.AsFloat(), true
	default:
		return 0, false
	}
}

// isAttrCol reports whether e is a reference to exactly the given column.
func isAttrCol(e algebra.Scalar, sch *schema.Relation, col int) bool {
	a, ok := e.(*algebra.Attr)
	if !ok {
		return false
	}
	if a.Index >= 0 {
		return a.Index == col
	}
	if sch != nil && a.Name != "" {
		return sch.AttrIndex(a.Name) == col
	}
	return false
}

// constValue unwraps a constant scalar of numeric or any other kind.
func constValue(e algebra.Scalar) (value.Value, bool) {
	c, ok := e.(*algebra.Const)
	if !ok {
		return value.Value{}, false
	}
	return c.V, true
}
