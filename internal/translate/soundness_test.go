package translate_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/calculus"
	"repro/internal/lang"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/translate"
	"repro/internal/value"
)

// oracleEnv adapts plain relations to algebra.Env (current state only —
// these tests exercise state constraints).
type oracleEnv map[string]*relation.Relation

func (e oracleEnv) Rel(name string, aux algebra.AuxKind) (*relation.Relation, error) {
	if aux != algebra.AuxCur {
		return nil, fmt.Errorf("oracleEnv: no %v incarnation", aux)
	}
	if r, ok := e[name]; ok {
		return r, nil
	}
	return nil, fmt.Errorf("oracleEnv: no relation %q", name)
}

func (e oracleEnv) Temp(string) (*relation.Relation, error) {
	return nil, fmt.Errorf("oracleEnv: no temps")
}

// randState builds random instances of r(a,b) and s(k,v) with small values,
// so both verdicts occur frequently.
func randState(rng *rand.Rand, db *schema.Database) oracleEnv {
	env := oracleEnv{}
	for _, name := range db.Names() {
		rs, _ := db.Relation(name)
		rel := relation.New(rs)
		n := rng.Intn(9)
		for i := 0; i < n; i++ {
			t := make(relation.Tuple, rs.Arity())
			for j := range t {
				t[j] = value.Int(int64(rng.Intn(7) - 3))
			}
			rel.InsertUnchecked(t)
		}
		env[name] = rel
	}
	return env
}

var cmpOps = []string{"<", "<=", "=", "<>", ">=", ">"}

// randConstraint draws a constraint source from the supported classes.
func randConstraint(rng *rand.Rand) string {
	cmp := func() string { return cmpOps[rng.Intn(len(cmpOps))] }
	k := func() int { return rng.Intn(7) - 3 }
	switch rng.Intn(12) {
	case 0:
		return fmt.Sprintf(`forall x (x in r implies x.a %s %d)`, cmp(), k())
	case 1:
		return fmt.Sprintf(`forall x ((x in r and x.b > %d) implies x.a %s %d)`, k(), cmp(), k())
	case 2:
		return `forall x (x in r implies exists y (y in s and x.b = y.k))`
	case 3:
		return fmt.Sprintf(`forall x (x in r implies exists y (y in s and x.b = y.k and y.v %s %d))`, cmp(), k())
	case 4:
		return fmt.Sprintf(`forall x (x in r implies forall y (y in s implies x.a %s y.k))`, cmp())
	case 5:
		return fmt.Sprintf(`forall x, y ((x in r and y in s and x.a = y.k) implies x.b %s y.v)`, cmp())
	case 6:
		return fmt.Sprintf(`exists x (x in r and x.a %s %d)`, cmp(), k())
	case 7:
		return fmt.Sprintf(`SUM(r, a) %s %d`, cmp(), k())
	case 8:
		return fmt.Sprintf(`CNT(s) %s %d`, cmp(), k()+3)
	case 9:
		return fmt.Sprintf(`SUM(r, a) %s CNT(r) * %d`, cmp(), k())
	case 10:
		return fmt.Sprintf(`forall x (x in r implies (x.a %s %d and x.b %s %d))`, cmp(), k(), cmp(), k())
	default:
		return fmt.Sprintf(`forall x (x in r implies (x.a < %d or exists y (y in s and x.b = y.k)))`, k())
	}
}

// programViolated runs the translated alarms against the state and reports
// whether any fired.
func programViolated(t *testing.T, prog algebra.Program, env algebra.Env) bool {
	t.Helper()
	for _, st := range prog {
		al, ok := st.(*algebra.Alarm)
		if !ok {
			t.Fatalf("non-alarm statement %T in aborting program", st)
		}
		r, err := al.Expr.Eval(env)
		if err != nil {
			t.Fatalf("alarm eval: %v", err)
		}
		if !r.IsEmpty() {
			return true
		}
	}
	return false
}

// TestTranslationSoundness is the oracle property referenced by
// EXPERIMENTS.md: for random database states and random constraints from
// every supported class, the translated algebra program raises an alarm iff
// the brute-force calculus evaluator says the condition is false.
func TestTranslationSoundness(t *testing.T) {
	db := testSchema()
	rng := rand.New(rand.NewSource(42))
	const trials = 4000
	classesSeen := map[translate.Class]int{}
	verdicts := map[bool]int{}

	for i := 0; i < trials; i++ {
		src := randConstraint(rng)
		w, err := lang.ParseConstraint(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		info, err := calculus.Validate(w, db)
		if err != nil {
			t.Fatalf("validate %q: %v", src, err)
		}
		res, err := translate.Condition(w, info, db, "C")
		if err != nil {
			t.Fatalf("translate %q: %v", src, err)
		}
		env := randState(rng, db)

		holds, err := calculus.NewEvaluator(info, env).Eval(w)
		if err != nil {
			t.Fatalf("oracle %q: %v", src, err)
		}
		violated := programViolated(t, res.Program, env)
		if holds == violated {
			t.Fatalf("soundness violated for %q\n  oracle holds=%v, program violated=%v\n  r=%s\n  s=%s\n  program:\n%s",
				src, holds, violated, env["r"], env["s"], res.Program)
		}
		for _, p := range res.Parts {
			classesSeen[p.Class]++
		}
		verdicts[holds]++
	}

	// The trial mix must actually exercise both verdicts and all classes.
	if verdicts[true] == 0 || verdicts[false] == 0 {
		t.Errorf("degenerate verdict mix: %v", verdicts)
	}
	for _, cl := range []translate.Class{
		translate.ClassDomain, translate.ClassReferential, translate.ClassPair,
		translate.ClassExistential, translate.ClassAggregate,
	} {
		if classesSeen[cl] == 0 {
			t.Errorf("class %s never exercised", cl)
		}
	}
}

// TestTranslationDeterministic checks that translating the same condition
// twice yields the same program text (no hidden state in the translator).
func TestTranslationDeterministic(t *testing.T) {
	db := testSchema()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		src := randConstraint(rng)
		texts := make([]string, 2)
		for j := 0; j < 2; j++ {
			w, err := lang.ParseConstraint(src)
			if err != nil {
				t.Fatal(err)
			}
			info, err := calculus.Validate(w, db)
			if err != nil {
				t.Fatal(err)
			}
			res, err := translate.Condition(w, info, db, "C")
			if err != nil {
				t.Fatal(err)
			}
			texts[j] = res.Program.String()
		}
		if texts[0] != texts[1] {
			t.Fatalf("translation of %q not deterministic:\n%s\nvs\n%s", src, texts[0], texts[1])
		}
	}
}
