package obs

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// WriteProm writes every metric in r in the Prometheus text exposition
// format (version 0.0.4). Histograms whose name ends in _seconds observe
// nanoseconds internally and are converted to seconds here (bucket bounds
// and sum); other histograms are exposed verbatim. Bucket lines stop at the
// highest populated bucket (plus the mandatory +Inf), so an idle histogram
// is two lines, not sixty-seven.
func WriteProm(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, name := range r.names() {
		r.mu.Lock()
		e := r.m[name]
		r.mu.Unlock()
		if e == nil {
			continue
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, e.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, e.g.Value())
		case kindHistogram:
			writePromHist(bw, name, e.h.Snapshot())
		}
	}
	return bw.Flush()
}

func writePromHist(w io.Writer, name string, s HistSnapshot) {
	scale := 1.0
	if strings.HasSuffix(name, "_seconds") {
		scale = 1e-9
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	top := -1
	for i, c := range s.Counts {
		if c != 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += s.Counts[i]
		le := strconv.FormatFloat(float64(BucketUpper(i))*scale, 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	sum := strconv.FormatFloat(float64(s.Sum)*scale, 'g', -1, 64)
	fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, sum, name, s.Count)
}

// expvarOnce guards against double publication, which expvar.Publish
// treats as a fatal error.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar publishes the registry under the given expvar name (its
// value is the JSON encoding of Snapshot). Re-publishing a name this
// package already published replaces nothing and is a no-op; a name taken
// by someone else panics, per expvar semantics.
func PublishExpvar(name string, r *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	expvarPublished[name] = true
}
