package obs

import "time"

// EventKind identifies a transaction- or epoch-lifecycle tracing point.
type EventKind uint8

const (
	// EvTxnBegin: an execution attempt pinned its base snapshot.
	// Txn, Time (snapshot logical time), N (attempt number, 0-based).
	EvTxnBegin EventKind = iota + 1
	// EvTxnProbe: an index key probe was recorded in the read set.
	// Txn, Relation, N (probe key count).
	EvTxnProbe
	// EvTxnRangeProbe: an ordered-index range probe was recorded.
	// Txn, Relation, N (interval count).
	EvTxnRangeProbe
	// EvTxnScan: a whole-relation read was recorded. Txn, Relation.
	EvTxnScan
	// EvTxnEnqueue: a commit joined the group-commit queue. Emitted
	// lock-free (the only event a tracer may block in). Txn, Time (base
	// snapshot time).
	EvTxnEnqueue
	// EvTxnValidate: the epoch drainer reached a verdict for one member.
	// Txn, OK; on conflict Relation/Key name the first conflicting read
	// (both empty for a snapshot-too-old refusal). Runs under shard locks.
	EvTxnValidate
	// EvWALAppend: the epoch's WAL records were appended (and group-fsynced
	// under sync=always). Epoch, LSN, Bytes, Dur. Runs under shard locks.
	EvWALAppend
	// EvWALFsync: a batched-policy background fsync pass completed.
	// N (segments synced), Dur.
	EvWALFsync
	// EvTxnCommit: a member's commit became durable-ordered and is about to
	// be acknowledged at Time. Txn, Time, Epoch.
	EvTxnCommit
	// EvEpochPublish: the epoch's snapshot swap completed. Epoch (published
	// logical time), N (accepted members), Dur (publish-stage latency,
	// including the pipeline-order wait).
	EvEpochPublish
	// EvTxnRetry: optimistic execution lost validation and will re-execute
	// after backoff. Txn, N (attempt number just failed, 0-based),
	// Relation/Key from the conflict.
	EvTxnRetry
	// EvSnapshotTooOld: a commit based on a snapshot behind the commit-log
	// retention span was refused. Txn, Time (truncation watermark).
	EvSnapshotTooOld
	// EvCheckpointStart: a checkpoint began. Time (snapshot time), LSN.
	EvCheckpointStart
	// EvCheckpointEnd: a checkpoint committed. Time, LSN, Bytes, Dur,
	// OK (true when the checkpoint was full, i.e. self-contained).
	EvCheckpointEnd
	// EvWALTruncate: sealed WAL segments behind the checkpoint watermark
	// were removed. LSN (watermark), N (segments removed).
	EvWALTruncate
	// EvRecoveryReplay: recovery replay progress (every ~1024 records and
	// once at the end). N (records applied so far), Bytes, LSN.
	EvRecoveryReplay
)

var kindNames = [...]string{
	EvTxnBegin:        "txn-begin",
	EvTxnProbe:        "txn-probe",
	EvTxnRangeProbe:   "txn-range-probe",
	EvTxnScan:         "txn-scan",
	EvTxnEnqueue:      "txn-enqueue",
	EvTxnValidate:     "txn-validate",
	EvWALAppend:       "wal-append",
	EvWALFsync:        "wal-fsync",
	EvTxnCommit:       "txn-commit",
	EvEpochPublish:    "epoch-publish",
	EvTxnRetry:        "txn-retry",
	EvSnapshotTooOld:  "snapshot-too-old",
	EvCheckpointStart: "checkpoint-start",
	EvCheckpointEnd:   "checkpoint-end",
	EvWALTruncate:     "wal-truncate",
	EvRecoveryReplay:  "recovery-replay",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one lifecycle occurrence. The struct is flat and reused across
// kinds; each kind's doc comment above lists which fields it populates.
type Event struct {
	Kind     EventKind
	Txn      string // transaction label, when one was set
	Relation string
	Key      string // conflict key bytes (equality-canonical encoding)
	OK       bool   // validate verdict / checkpoint incremental
	Epoch    uint64 // epoch's published logical time (last of its block)
	Time     uint64 // logical time relevant to the event
	LSN      uint64
	N        uint64 // generic count (see kind docs)
	Bytes    uint64
	Dur      time.Duration
}

// Tracer receives lifecycle events. Implementations are called
// synchronously from the pipeline — several sites hold shard locks, so a
// tracer must return promptly and must not re-enter the database. Only
// EvTxnEnqueue is emitted lock-free.
type Tracer interface {
	Event(e Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Event)

// Event calls f(e).
func (f TracerFunc) Event(e Event) { f(e) }
