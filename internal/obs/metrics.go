package obs

import (
	"fmt"
	"math/bits"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numStripes is the number of padded cells a counter or histogram spreads
// its updates over. Power of two so the stripe pick is a shift+mask.
const numStripes = 16

// stripeIdx picks a stripe from the address of a caller-local variable.
// Goroutine stacks are disjoint, so concurrent writers land on different
// stripes with high probability; correctness never depends on the pick
// (readers sum every stripe), so stack moves and reuse are harmless.
func stripeIdx() uint64 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return (uint64(p) * 0x9e3779b97f4a7c15) >> (64 - 4) % numStripes
}

// cell is one cache-line-padded counter stripe.
type cell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing striped counter. All methods are
// safe on a nil receiver (no-ops / zero), which is the disabled fast path.
type Counter struct {
	stripes [numStripes]cell
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.stripes[stripeIdx()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total. It is monotone but, under concurrent
// writers, not a linearizable point read.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.stripes {
		t += c.stripes[i].v.Load()
	}
	return t
}

// Gauge is a settable instantaneous value (queue depths, occupancy).
// Updates are infrequent relative to counters, so it is a single atomic.
// Safe on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of histogram buckets: bucket i counts values
// whose bit length is i, so bucket 0 is exactly zero and bucket i (i>=1)
// covers [2^(i-1), 2^i). 64-bit values need buckets 0..64.
const histBuckets = 65

// histCell is one histogram stripe. The counts array spans several cache
// lines regardless, so only the stripe boundary is padded.
type histCell struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
	_      [48]byte
}

// Histogram is a fixed-bucket power-of-two histogram. Latency histograms
// (name ending _seconds) observe nanoseconds; size histograms (_bytes,
// _size) observe raw magnitudes. Safe on a nil receiver.
type Histogram struct {
	stripes [numStripes]histCell
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	s := &h.stripes[stripeIdx()]
	s.counts[bits.Len64(v)].Add(1)
	s.sum.Add(v)
}

// Snapshot sums the stripes into an immutable view.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.counts {
			s.Counts[b] += st.counts[b].Load()
		}
		s.Sum += st.sum.Load()
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// HistSnapshot is a point-in-time histogram view.
type HistSnapshot struct {
	Counts [histBuckets]uint64 // Counts[i] = observations with bit length i
	Count  uint64
	Sum    uint64
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket holding the target rank. Returns 0 for an empty
// histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == histBuckets-1 {
			lo := float64(0)
			if i >= 1 {
				lo = float64(uint64(1) << uint(i-1))
			}
			hi := float64(BucketUpper(i))
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
				if frac < 0 {
					frac = 0
				}
				if frac > 1 {
					frac = 1
				}
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return 0
}

// Mean returns the arithmetic mean of the observations, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// nameRE is the engine-wide naming convention; cmd/obslint enforces the
// same shape statically over the source tree.
var nameRE = regexp.MustCompile(`^repro_(txn|storage_cache|storage|wal|index|checkpoint|recovery)_[a-z0-9_]+$`)

// checkName panics on a convention violation: metric names are compile-time
// string literals, so a bad name is a programmer error, not input.
func checkName(name string, kind metricKind) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: metric %q violates naming convention repro_<layer>_<what>", name))
	}
	total := strings.HasSuffix(name, "_total")
	sized := strings.HasSuffix(name, "_seconds") || strings.HasSuffix(name, "_bytes") || strings.HasSuffix(name, "_size")
	switch kind {
	case kindCounter:
		if !total {
			panic(fmt.Sprintf("obs: counter %q must end in _total", name))
		}
	case kindHistogram:
		if !sized {
			panic(fmt.Sprintf("obs: histogram %q must end in _seconds, _bytes or _size", name))
		}
	case kindGauge:
		if total || sized {
			panic(fmt.Sprintf("obs: gauge %q must not use a counter/histogram unit suffix", name))
		}
	}
}

type entry struct {
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named set of metrics. Lookup is get-or-create and
// idempotent — asking twice for one name returns the same metric, so
// several engine instances can share a registry — but re-requesting a name
// as a different kind panics. A nil *Registry is the disabled registry:
// every lookup returns a nil metric whose methods are no-ops.
type Registry struct {
	mu sync.Mutex
	m  map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*entry)}
}

func (r *Registry) lookup(name string, kind metricKind) *entry {
	checkName(name, kind)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.m[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = &Histogram{}
	}
	r.m[name] = e
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge).g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindHistogram).h
}

// Snapshot is a point-in-time structured view of a registry, suitable for
// JSON encoding and programmatic inspection (DB.Metrics returns one).
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. Under concurrent writers the
// values are individually monotone but not a consistent cut.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	entries := make(map[string]*entry, len(r.m))
	for name, e := range r.m {
		entries[name] = e
	}
	r.mu.Unlock()
	s.Counters = make(map[string]uint64)
	s.Gauges = make(map[string]int64)
	s.Histograms = make(map[string]HistSnapshot)
	for name, e := range entries {
		switch e.kind {
		case kindCounter:
			s.Counters[name] = e.c.Value()
		case kindGauge:
			s.Gauges[name] = e.g.Value()
		case kindHistogram:
			s.Histograms[name] = e.h.Snapshot()
		}
	}
	return s
}

// names returns the registered metric names in sorted order (exposition
// stability).
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
