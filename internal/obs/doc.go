// Package obs is the engine's dependency-free observability core: striped
// atomic counters, gauges and fixed-bucket histograms behind a named
// registry, a typed transaction/epoch lifecycle Tracer, and two zero-config
// exporters (Prometheus text format, expvar).
//
// Design constraints, in order:
//
//   - Near-zero cost when off. Every metric type is nil-receiver-safe: a
//     nil *Counter's Add is a single predictable branch, so instrumented
//     code holds plain struct fields and never tests a feature flag. Timing
//     call sites guard on the histogram pointer before calling time.Now, so
//     a disabled registry skips the clock reads too.
//   - Low contention when on. Counters and histograms are striped across
//     cache-line-padded cells; the stripe is picked by hashing the address
//     of a stack variable, which is stable per goroutine for the duration
//     of a call and needs no runtime hooks. Reads (Value, Snapshot) sum the
//     stripes; they are monotone but not a consistent cut across metrics.
//   - Fixed memory. Histograms use power-of-two buckets (bucket i counts
//     values whose bit length is i), so a histogram is a flat array — no
//     allocation on the observe path, quantiles by interpolation inside a
//     bucket. Latency histograms observe nanoseconds; the Prometheus writer
//     converts *_seconds metrics to seconds on the way out.
//
// Naming convention (enforced by the registry at runtime and by
// cmd/obslint statically): every metric is
// repro_<layer>_<what>[_<unit>] with layer one of txn, storage, wal,
// index, checkpoint, recovery; counters end in _total; histograms end in
// _seconds, _bytes or _size; gauges end in none of those.
//
// The Tracer interface receives typed Events at transaction and epoch
// lifecycle points (begin, probe, enqueue, validate verdict, WAL append and
// fsync, publish, retry, snapshot-too-old refusal, checkpoint and recovery
// progress). Tracer implementations are called synchronously from the
// commit pipeline — some sites run under shard locks, so a tracer must not
// block (the one exception, used by tests, is the enqueue event, which is
// emitted lock-free).
package obs
