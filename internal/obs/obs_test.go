package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"flag"
	"math"
	"os"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestObsConcurrentHammer drives counters, gauges and histograms from 16
// goroutines while a snapshotter reads concurrently (the -race CI stress
// runs this); the final totals must be exact.
func TestObsConcurrentHammer(t *testing.T) {
	const (
		workers = 16
		perG    = 10000
	)
	reg := NewRegistry()
	c := reg.Counter("repro_txn_statements_total")
	g := reg.Gauge("repro_storage_pipeline_inflight_epochs")
	h := reg.Histogram("repro_wal_fsync_seconds")

	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := reg.Snapshot()
			if v := s.Counters["repro_txn_statements_total"]; v < last {
				t.Errorf("counter went backwards: %d -> %d", last, v)
				return
			} else {
				last = v
			}
			if hs := s.Histograms["repro_wal_fsync_seconds"]; hs.Quantile(0.99) < 0 {
				t.Error("negative quantile")
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
				g.Add(1)
				h.Observe(uint64(w*perG + i))
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	if got := c.Value(); got != workers*perG {
		t.Fatalf("counter = %d, want %d", got, workers*perG)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	hs := h.Snapshot()
	if hs.Count != workers*perG {
		t.Fatalf("histogram count = %d, want %d", hs.Count, workers*perG)
	}
	var wantSum uint64
	for i := uint64(0); i < workers*perG; i++ {
		wantSum += i
	}
	if hs.Sum != wantSum {
		t.Fatalf("histogram sum = %d, want %d", hs.Sum, wantSum)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
	)
	c.Add(3)
	c.Inc()
	g.Set(5)
	g.Add(-2)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if r.Counter("repro_txn_retries_total") != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	if s := r.Snapshot(); s.Counters != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, r); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v len=%d", err, buf.Len())
	}
}

func TestMetricHotPathDoesNotAllocate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("repro_txn_attempts_total")
	h := reg.Histogram("repro_txn_statement_seconds")
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op", n)
	}
}

func TestRegistryIdempotentAndKindChecked(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("repro_storage_commits_total")
	b := reg.Counter("repro_storage_commits_total")
	if a != b {
		t.Fatal("get-or-create must return the same counter")
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("kind mismatch", func() { reg.Gauge("repro_storage_commits_total") })
	mustPanic("bad layer", func() { reg.Counter("repro_bogus_things_total") })
	mustPanic("counter without _total", func() { reg.Counter("repro_txn_retries") })
	mustPanic("histogram without unit", func() { reg.Histogram("repro_wal_fsync") })
	mustPanic("gauge with _total", func() { reg.Gauge("repro_wal_depth_total") })
	mustPanic("uppercase", func() { reg.Counter("repro_txn_Retries_total") })
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("repro_storage_epoch_txns_size")
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 500500 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	// Power-of-two buckets: the estimate must land within the true value's
	// bucket, i.e. within a factor of two.
	for _, tc := range []struct{ q, want float64 }{{0.5, 500}, {0.99, 990}, {1, 1000}} {
		got := s.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("Quantile(%v) = %v, want within 2x of %v", tc.q, got, tc.want)
		}
	}
	if m := s.Mean(); math.Abs(m-500.5) > 1e-9 {
		t.Errorf("Mean = %v, want 500.5", m)
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
}

// TestPromGolden pins the exposition format byte for byte. Regenerate with
// go test ./internal/obs -run TestPromGolden -update.
func TestPromGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("repro_storage_commits_total").Add(42)
	reg.Counter("repro_storage_conflicts_total") // registered, never hit
	reg.Gauge("repro_wal_flush_queue_depth").Set(3)
	h := reg.Histogram("repro_wal_fsync_seconds")
	for _, ns := range []uint64{0, 900, 1000, 1500, 2_000_000} {
		h.Observe(ns)
	}
	reg.Histogram("repro_storage_epoch_txns_size").Observe(5)

	var buf bytes.Buffer
	if err := WriteProm(&buf, reg); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/prom.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestPublishExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("repro_recovery_replayed_records_total").Add(9)
	PublishExpvar("repro-test-metrics", reg)
	PublishExpvar("repro-test-metrics", reg) // second publish is a no-op
	v := expvar.Get("repro-test-metrics")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["repro_recovery_replayed_records_total"] != 9 {
		t.Fatalf("snapshot = %+v", s)
	}
}
