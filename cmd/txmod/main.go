// Command txmod is an interactive shell for the transaction modification
// subsystem: declare relations and rules, submit transactions (watching how
// they are modified), and query the database. Commands end with a line
// containing only ";;".
//
//	> relation beer(name string, type string, brewery string, alcohol int) ;;
//	> constraint R1: forall x (x in beer implies x.alcohol >= 0) ;;
//	> rule R2: if not ... then ... ;;
//	> begin insert(beer, values[("a","b","c",1)]); end ;;
//	> explain begin ... end ;;
//	> query select(beer, alcohol > 3) ;;
//	> rules ;;   triggers ;;   validate ;;   status ;;   help ;;   quit ;;
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	db := repro.Open(&repro.Options{UseDifferential: true})
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1024*1024), 1024*1024)
	fmt.Println("txmod — transaction modification shell (help ;; for commands)")

	var buf []string
	prompt := func() { fmt.Print("> ") }
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasSuffix(trimmed, ";;") {
			buf = append(buf, strings.TrimSuffix(trimmed, ";;"))
			cmd := strings.TrimSpace(strings.Join(buf, "\n"))
			buf = nil
			if cmd != "" {
				if quit := execute(db, cmd); quit {
					return
				}
			}
			prompt()
			continue
		}
		buf = append(buf, line)
	}
}

func execute(db *repro.DB, cmd string) (quit bool) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Printf("error: %v\n", r)
		}
	}()
	head := strings.ToLower(firstWord(cmd))
	switch head {
	case "quit", "exit":
		return true
	case "help":
		fmt.Println(`commands (terminate with ";;"):
  relation NAME(attr type, ...)     declare a relation
  constraint NAME: <CL formula>     declare an aborting constraint
  rule NAME: <RL rule>              declare a full rule (when/if not/then)
  begin ... end                     submit a transaction
  explain begin ... end             show the modified transaction, do not run
  query <algebra expr>              evaluate an expression
  rules / triggers / validate       inspect the rule set
  status                            relations and cardinalities
  quit`)
	case "relation":
		report(db.CreateRelation(cmd))
	case "constraint":
		name, body, err := splitNameColon(cmd, "constraint")
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		report(db.DefineConstraint(name, body))
	case "rule":
		name, body, err := splitNameColon(cmd, "rule")
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		report(db.DefineRule(name, body))
	case "begin":
		res, err := db.Submit(cmd)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if res.Committed {
			fmt.Printf("committed (+%d/-%d tuples; %d rules fired)\n",
				res.Inserted, res.Deleted, len(res.Report.RulesTriggered))
		} else {
			fmt.Printf("ABORTED: %s\n", res.Reason)
		}
	case "explain":
		text, rep, err := db.Explain(strings.TrimSpace(strings.TrimPrefix(cmd, "explain")))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("depth %d, %d -> %d statements:\n%s\n", rep.Depth, rep.OriginalStmts, rep.FinalStmts, text)
	case "query":
		rows, err := db.Query(strings.TrimSpace(strings.TrimPrefix(cmd, "query")))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(strings.Join(rows.Columns, " | "))
		for _, r := range rows.Data {
			parts := make([]string, len(r))
			for i, v := range r {
				parts[i] = fmt.Sprint(v)
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		fmt.Printf("(%d rows)\n", len(rows.Data))
	case "rules":
		for _, n := range db.RuleNames() {
			prog, _ := db.EnforcementProgram(n)
			fmt.Printf("rule %s:\n%s", n, prog)
		}
	case "triggers":
		for _, n := range db.RuleNames() {
			t, _ := db.RuleTriggers(n)
			fmt.Printf("%s: %s\n", n, t)
		}
	case "validate":
		if err := db.ValidateRules(); err != nil {
			fmt.Println(err)
		} else {
			fmt.Println("triggering graph is acyclic")
		}
	case "status":
		fmt.Print(db.String())
	default:
		fmt.Printf("unknown command %q (help ;;)\n", head)
	}
	return false
}

func firstWord(s string) string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

func splitNameColon(cmd, keyword string) (name, body string, err error) {
	rest := strings.TrimSpace(strings.TrimPrefix(cmd, keyword))
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return "", "", fmt.Errorf("expected '%s NAME: ...'", keyword)
	}
	return strings.TrimSpace(rest[:colon]), strings.TrimSpace(rest[colon+1:]), nil
}

func report(err error) {
	if err != nil {
		fmt.Println("error:", err)
	} else {
		fmt.Println("ok")
	}
}
