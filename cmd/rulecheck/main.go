// Command rulecheck validates an integrity rule set: it compiles the rules,
// prints their (generated) trigger sets, enforcement programs and constraint
// classes, builds the triggering graph of Definition 6.1, and reports any
// cycles — the static analysis a database designer runs before enabling a
// rule set (Section 6.1).
//
// Input is a definition file with one declaration per block, blocks
// separated by a line containing only "---":
//
//	relation beer(name string, type string, brewery string, alcohol int)
//	---
//	relation brewery(name string, city string, country string)
//	---
//	rule R1: forall x (x in beer implies x.alcohol >= 0)
//	---
//	rule R2:
//	if not forall x (x in beer implies
//	    exists y (y in brewery and x.brewery = y.name))
//	then
//	    temp := diff(project(beer, brewery), project(brewery, name));
//	    insert(brewery, project(temp, #1 as name, null as city, null as country))
//
// "rule NAME: <CL formula>" declares a default aborting rule; "rule NAME:"
// followed by RL text declares a full rule.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/lang"
	"repro/internal/rules"
	"repro/internal/schema"
)

func main() {
	dot := flag.Bool("dot", false, "print the triggering graph in Graphviz DOT format")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rulecheck [-dot] <definitions-file>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	sch := schema.MustDatabase()
	cat := rules.NewCatalog(sch)
	for _, block := range splitBlocks(string(data)) {
		if err := handleBlock(block, sch, cat); err != nil {
			log.Fatalf("block %q: %v", firstLine(block), err)
		}
	}

	fmt.Printf("%d relation(s), %d rule(s)\n\n", sch.Len(), cat.Len())
	for _, ip := range cat.Programs() {
		fmt.Printf("rule %s\n  triggers: %s\n", ip.RuleName, ip.Triggers)
		if len(ip.Classes) > 0 {
			classes := make([]string, len(ip.Classes))
			for i, c := range ip.Classes {
				classes[i] = c.String()
			}
			fmt.Printf("  classes:  %s\n", strings.Join(classes, ", "))
		}
		fmt.Printf("  enforcement (full):\n%s", indent(ip.Full.String(), "    "))
		if ip.Differential != nil {
			fmt.Printf("  enforcement (differential):\n%s", indent(ip.Differential.String(), "    "))
		}
		if ip.NonTriggering {
			fmt.Println("  action declared non-triggering")
		}
		fmt.Println()
	}

	g := graph.Build(cat.Programs())
	if *dot {
		fmt.Println(g.DOT())
	}
	if err := g.Validate(); err != nil {
		fmt.Printf("TRIGGERING CYCLES: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("triggering graph is acyclic: rule set cannot loop")
}

func splitBlocks(src string) []string {
	var blocks []string
	var cur []string
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) == "---" {
			if b := strings.TrimSpace(strings.Join(cur, "\n")); b != "" {
				blocks = append(blocks, b)
			}
			cur = nil
			continue
		}
		cur = append(cur, line)
	}
	if b := strings.TrimSpace(strings.Join(cur, "\n")); b != "" {
		blocks = append(blocks, b)
	}
	return blocks
}

func handleBlock(block string, sch *schema.Database, cat *rules.Catalog) error {
	switch {
	case strings.HasPrefix(block, "relation"):
		rs, err := lang.ParseRelationSchema(block)
		if err != nil {
			return err
		}
		return sch.Add(rs)
	case strings.HasPrefix(block, "rule"):
		rest := strings.TrimSpace(strings.TrimPrefix(block, "rule"))
		colon := strings.Index(rest, ":")
		if colon < 0 {
			return fmt.Errorf("rule block needs 'rule NAME: ...'")
		}
		name := strings.TrimSpace(rest[:colon])
		body := strings.TrimSpace(rest[colon+1:])
		var r *rules.Rule
		var err error
		if strings.HasPrefix(body, "when") || strings.HasPrefix(body, "if") {
			r, err = lang.ParseRule(name, body, sch)
		} else {
			r, err = lang.ParseConstraintRule(name, body)
		}
		if err != nil {
			return err
		}
		return cat.Add(r)
	default:
		return fmt.Errorf("unknown declaration (want 'relation ...' or 'rule NAME: ...')")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
