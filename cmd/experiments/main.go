// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index): Table 1 (constraint
// construct translation), Example 5.1 (transaction modification), the
// Section 7 performance claims, and the ablation sweeps. Output is plain
// text suitable for diffing into EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"repro"
	"repro/internal/algebra"
	"repro/internal/bench"
	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/relation"
	"repro/internal/rules"
	"repro/internal/storage"
	"repro/internal/translate"
	"repro/internal/txn"
	"repro/internal/value"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "regenerate Table 1 (constraint translation)")
		example51 = flag.Bool("example51", false, "regenerate Example 5.1 (transaction modification)")
		perf      = flag.Bool("perf", false, "regenerate the Section 7 performance experiment")
		sweeps    = flag.Bool("sweeps", false, "run the ablation sweeps")
		all       = flag.Bool("all", false, "run everything")
	)
	flag.Parse()
	if !*table1 && !*example51 && !*perf && !*sweeps {
		*all = true
	}
	if *all || *table1 {
		runTable1()
	}
	if *all || *example51 {
		runExample51()
	}
	if *all || *perf {
		runPerf()
	}
	if *all || *sweeps {
		runSweeps()
	}
}

// runTable1 translates the seven construct classes of Table 1 and prints the
// produced algebra next to the paper's forms. Semijoin/antijoin forms are
// emptiness-equivalent to the paper's π/∩/− renderings.
func runTable1() {
	fmt.Println("== Table 1: translation of typical constraint constructs ==")
	cfg := bench.DefaultPaperConfig()
	sch := cfg.Schema() // parent(id, name), child(id, parent, qty)
	rows := []struct {
		cl    string
		paper string
	}{
		{`forall x (x in child implies x.qty >= 0)`,
			"alarm(σ_{¬c'} R)"},
		{`forall x (x in child implies exists y (y in parent and x.parent = y.id))`,
			"alarm(π_i R ▷ π_j S)"},
		{`forall x (x in child implies forall y (y in parent implies x.id <> y.id))`,
			"alarm(π_i R ∩ π_j S)"},
		{`forall x, y ((x in child and y in child and x.id = y.id) implies x.qty = y.qty)`,
			"alarm(σ_{¬c2'}(R ⋈_{c1'} S))"},
		{`exists x (x in parent and x.id = 0)`,
			"alarm(σ_{attr1=0}(CNT(σ_{c'} R)))"},
		{`SUM(child, qty) >= 0`,
			"alarm(σ_{¬c'}(AGGR(R, i)))"},
		{`CNT(parent) <= 1000000`,
			"alarm(σ_{¬c'}(CNT(R)))"},
	}
	for i, row := range rows {
		w, err := lang.ParseConstraint(row.cl)
		if err != nil {
			log.Fatalf("row %d parse: %v", i+1, err)
		}
		info, err := calculus.Validate(w, sch)
		if err != nil {
			log.Fatalf("row %d validate: %v", i+1, err)
		}
		res, err := translate.Condition(w, info, sch, fmt.Sprintf("c%d", i+1))
		if err != nil {
			log.Fatalf("row %d translate: %v", i+1, err)
		}
		fmt.Printf("row %d\n  CL:    %s\n  paper: %s\n  ours:  %s", i+1, row.cl, row.paper, res.Program)
		fmt.Printf("  class: %s\n\n", res.Parts[0].Class)
	}
}

// runExample51 rebuilds the beer database and prints the modified form of
// the paper's example transaction.
func runExample51() {
	fmt.Println("== Example 5.1: transaction modification ==")
	db := repro.Open(nil)
	db.MustCreateRelation(`relation beer(name string, type string, brewery string, alcohol int)`)
	db.MustCreateRelation(`relation brewery(name string, city string, country string)`)
	db.MustDefineConstraint("R1", `forall x (x in beer implies x.alcohol >= 0)`)
	db.MustDefineRule("R2", `
		if not forall x (x in beer implies
			exists y (y in brewery and x.brewery = y.name))
		then
			temp := diff(project(beer, brewery), project(brewery, name));
			insert(brewery, project(temp, #1 as name, null as city, null as country))`)
	text, rep, err := db.Explain(`begin
		insert(beer, values[("exportgold", "stout", "guineken", 6)]);
	end`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modified transaction (depth %d, %d -> %d statements):\n%s\n\n",
		rep.Depth, rep.OriginalStmts, rep.FinalStmts, text)
}

// medianOf runs fn reps times and returns the median duration.
func medianOf(reps int, fn func()) time.Duration {
	times := make([]time.Duration, reps)
	for i := range times {
		start := time.Now()
		fn()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[reps/2]
}

// runPerf regenerates the Section 7 experiment: referential and domain
// checks after inserting 5 000 tuples into the 50 000-tuple FK relation, on
// an 8-node simulated cluster.
func runPerf() {
	fmt.Println("== Section 7: constraint enforcement performance ==")
	fmt.Printf("host: %d CPUs (the paper used an 8-node POOMA; parallel speedup saturates at the host CPU count)\n", runtime.NumCPU())
	cfg := bench.DefaultPaperConfig()
	parent, child, newChild, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	cat, err := cfg.Catalog()
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cfg.NewCluster(8, parent, child)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.ApplyInserts("child", newChild); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %-12s %-12s %s\n", "check (8 nodes)", "measured", "paper", "verdict")
	type exp struct {
		rule  string
		diff  bool
		label string
		paper string
		bound time.Duration
	}
	exps := []exp{
		{"referential", false, "referential/full", "< 3 s", 3 * time.Second},
		{"referential", true, "referential/diff", "< 3 s", 3 * time.Second},
		{"domain", false, "domain/full", "< 1 s", time.Second},
		{"domain", true, "domain/diff", "< 1 s", time.Second},
	}
	measured := map[string]time.Duration{}
	for _, e := range exps {
		ip, _ := cat.Program(e.rule)
		prog := ip.Program(e.diff)
		d := medianOf(5, func() {
			res, err := cl.CheckProgram(prog)
			if err != nil {
				log.Fatal(err)
			}
			if res.Violations != 0 {
				log.Fatalf("unexpected violations: %d", res.Violations)
			}
		})
		measured[e.label] = d
		verdict := "within paper bound"
		if d >= e.bound {
			verdict = "EXCEEDS paper bound"
		}
		fmt.Printf("%-22s %-12s %-12s %s\n", e.label, d.Round(10*time.Microsecond), e.paper, verdict)
	}
	ratio := float64(measured["referential/full"]) / float64(measured["domain/full"])
	fmt.Printf("\nreferential/domain cost ratio (full): %.1fx (paper: ~3x)\n\n", ratio)
}

// runSweeps runs the node-count, update-size, strategy and rule-count
// sweeps.
func runSweeps() {
	cfg := bench.DefaultPaperConfig()
	parent, child, newChild, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	cat, err := cfg.Catalog()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== F-nodes: parallel scalability (referential, full) ==")
	fmt.Printf("%-8s %-14s\n", "nodes", "median")
	for _, nodes := range []int{1, 2, 4, 8} {
		cl, err := cfg.NewCluster(nodes, parent, child)
		if err != nil {
			log.Fatal(err)
		}
		if err := cl.ApplyInserts("child", newChild); err != nil {
			log.Fatal(err)
		}
		ip, _ := cat.Program("referential")
		prog := ip.Program(false)
		d := medianOf(5, func() {
			if _, err := cl.CheckProgram(prog); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("%-8d %-14s\n", nodes, d.Round(10*time.Microsecond))
	}

	fmt.Println("\n== F-updatesize: checking cost vs update size (referential, 1 node) ==")
	fmt.Printf("%-8s %-14s %-14s\n", "U", "full", "differential")
	for _, u := range []int{50, 500, 5000} {
		c2 := cfg
		c2.Inserts = u
		p2, ch2, nc2, err := c2.Generate()
		if err != nil {
			log.Fatal(err)
		}
		cl, err := c2.NewCluster(1, p2, ch2)
		if err != nil {
			log.Fatal(err)
		}
		if err := cl.ApplyInserts("child", nc2); err != nil {
			log.Fatal(err)
		}
		ip, _ := cat.Program("referential")
		row := fmt.Sprintf("%-8d", u)
		for _, diff := range []bool{false, true} {
			prog := ip.Program(diff)
			d := medianOf(5, func() {
				if _, err := cl.CheckProgram(prog); err != nil {
					log.Fatal(err)
				}
			})
			row += fmt.Sprintf(" %-13s", d.Round(10*time.Microsecond))
		}
		fmt.Println(row)
	}

	fmt.Println("\n== A-baseline: end-to-end strategy comparison (insert 5000) ==")
	store, err := cfg.NewStore(parent, child)
	if err != nil {
		log.Fatal(err)
	}
	childSchema, _ := cfg.Schema().Relation("child")
	user := txn.New(&algebra.Insert{Rel: "child", Src: algebra.NewLit(childSchema, newChild.Tuples()...)})
	strategies := []struct {
		name string
		run  func() *txn.Result
	}{
		{"unchecked", func() *txn.Result {
			exec := txn.NewExecutor(store.Clone())
			res, err := exec.Exec(user)
			if err != nil {
				log.Fatal(err)
			}
			return res
		}},
		{"modified-full", runModified(cat, store, user, false)},
		{"modified-differential", runModified(cat, store, user, true)},
		{"posthoc-full", func() *txn.Result {
			exec := txn.NewExecutor(store.Clone())
			res, err := exec.ExecWithCheck(user, func(env algebra.Env) error {
				for _, ip := range cat.Programs() {
					for _, st := range ip.Full {
						if al, ok := st.(*algebra.Alarm); ok {
							r, err := al.Expr.Eval(env)
							if err != nil {
								return err
							}
							if !r.IsEmpty() {
								return &algebra.ViolationError{Constraint: al.Constraint}
							}
						}
					}
				}
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			return res
		}},
	}
	fmt.Printf("%-24s %-14s\n", "strategy", "median")
	for _, s := range strategies {
		d := medianOf(5, func() {
			if res := s.run(); !res.Committed {
				log.Fatalf("%s aborted: %v", s.name, res.AbortReason)
			}
		})
		fmt.Printf("%-24s %-14s\n", s.name, d.Round(10*time.Microsecond))
	}

	fmt.Println("\n== A-ablation-static: modification latency, static vs dynamic ==")
	fmt.Printf("%-8s %-14s %-14s\n", "rules", "static", "dynamic")
	single := txn.New(&algebra.Insert{
		Rel: "child",
		Src: algebra.NewLit(childSchema, relation.Tuple{value.Int(1), value.Int(1), value.Int(1)}),
	})
	for _, n := range []int{1, 4, 16, 64} {
		cat2 := rules.NewCatalog(cfg.Schema())
		for i := 0; i < n; i++ {
			r, err := lang.ParseConstraintRule(fmt.Sprintf("dom%d", i),
				fmt.Sprintf(`forall x (x in child implies x.qty >= %d)`, -i))
			if err != nil {
				log.Fatal(err)
			}
			if err := cat2.Add(r); err != nil {
				log.Fatal(err)
			}
		}
		row := fmt.Sprintf("%-8d", n)
		for _, dyn := range []bool{false, true} {
			sub := core.New(cat2, core.Options{Dynamic: dyn})
			d := medianOf(25, func() {
				if _, _, err := sub.Modify(single); err != nil {
					log.Fatal(err)
				}
			})
			row += fmt.Sprintf(" %-13s", d.Round(time.Microsecond))
		}
		fmt.Println(row)
	}
	fmt.Fprintln(os.Stdout)
}

// runModified returns a strategy closure that modifies the transaction once
// and executes it against a fresh clone of the base state per run.
func runModified(cat *rules.Catalog, store *storage.Database, user *txn.Transaction, diff bool) func() *txn.Result {
	sub := core.New(cat, core.Options{UseDifferential: diff})
	modified, _, err := sub.Modify(user.Clone())
	if err != nil {
		log.Fatal(err)
	}
	return func() *txn.Result {
		exec := txn.NewExecutor(store.Clone())
		res, err := exec.Exec(modified)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
}
