// Command benchjson converts `go test -bench` output into a stable JSON
// document and renders markdown comparison tables between two such
// documents. It is the glue of the CI bench job: the PR run is parsed into
// BENCH_pr.json (uploaded as an artifact), then compared against the
// committed BENCH_baseline.json in the job summary.
//
// Usage:
//
//	go test -bench=. | benchjson -out BENCH_pr.json
//	benchjson -compare BENCH_baseline.json BENCH_pr.json >> "$GITHUB_STEP_SUMMARY"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the JSON document: environment header lines plus results.
type Doc struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "parse `go test -bench` output from stdin and write JSON to this file ('-' for stdout)")
	compare := flag.Bool("compare", false, "compare two JSON files (baseline, current) and print a markdown table")
	flag.Parse()

	switch {
	case *compare:
		if flag.NArg() != 2 {
			fatalf("-compare needs exactly two files: baseline current")
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1)); err != nil {
			fatalf("compare: %v", err)
		}
	case *out != "":
		if err := runParse(*out); err != nil {
			fatalf("parse: %v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// runParse reads benchmark output from stdin and writes the JSON document.
func runParse(out string) error {
	doc, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// parseBench scans `go test -bench` output. Result lines look like
//
//	BenchmarkName/sub-8   300   216936 ns/op   4610 txns/s   0.02 retries/txn
//
// i.e. name, iteration count, then value/unit pairs. Header lines (goos,
// goarch, pkg, cpu) are kept as environment metadata.
func parseBench(r *os.File) (*Doc, error) {
	doc := &Doc{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, h := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, h+":"); ok {
				doc.Env[h] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "BenchmarkFoo" header split across lines
		}
		b := Benchmark{Name: stripProcs(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			if fields[i+1] == "ns/op" {
				b.NsPerOp = v
			} else {
				b.Metrics[fields[i+1]] = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found on stdin")
	}
	return doc, nil
}

// stripProcs removes the trailing "-N" GOMAXPROCS suffix the testing
// package appends on multi-core machines (e.g. "BenchmarkFoo/sub-4" →
// "BenchmarkFoo/sub"), so documents recorded on machines with different
// core counts compare by logical benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func load(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// opsPerSec is the headline rate for one benchmark: the reported txns/s
// metric when present, otherwise derived from ns/op.
func opsPerSec(b Benchmark) float64 {
	if v, ok := b.Metrics["txns/s"]; ok {
		return v
	}
	if b.NsPerOp > 0 {
		return 1e9 / b.NsPerOp
	}
	return 0
}

// memCell renders the baseline→current movement of one memory metric
// (recorded by -benchmem: "B/op" or "allocs/op"). Memory columns make
// delta-proportionality regressions visible per PR: an O(n) copy sneaking
// back into the write path shows up as allocation counts that grow with
// preloaded relation size long before it dominates ns/op.
func memCell(base, cur Benchmark, hasBase bool, unit string) string {
	cv, cok := cur.Metrics[unit]
	if !cok {
		return "—"
	}
	var bv float64
	bok := false
	if hasBase {
		bv, bok = base.Metrics[unit]
	}
	if !bok {
		return fmt.Sprintf("%.0f", cv)
	}
	if bv == 0 {
		return fmt.Sprintf("%.0f→%.0f", bv, cv)
	}
	return fmt.Sprintf("%.0f→%.0f (%+.1f%%)", bv, cv, (cv-bv)/bv*100)
}

// regressPct is the headline-rate drop (in percent) past which a row is
// flagged. Comparison output is advisory — the job still exits 0 — but the
// ⚠ marks and the trailing list make a >10% txns/s regression impossible
// to miss in the job summary.
const regressPct = 10.0

// runCompare prints a markdown comparison of current against baseline,
// benchmark by benchmark: the headline ops/sec rate plus the B/op and
// allocs/op movements when either document recorded them. Rows whose
// headline rate dropped more than regressPct are flagged and repeated in a
// trailing regression list.
func runCompare(basePath, curPath string) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cur, err := load(curPath)
	if err != nil {
		return err
	}
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}

	fmt.Printf("### Benchmark comparison (ops/sec, memory)\n\n")
	if cpu := cur.Env["cpu"]; cpu != "" {
		fmt.Printf("Current run on `%s`; baseline recorded on `%s`. Treat cross-machine deltas as indicative only.\n\n", cpu, base.Env["cpu"])
	}
	fmt.Printf("| benchmark | baseline | current | Δ | B/op | allocs/op |\n")
	fmt.Printf("|---|---:|---:|---:|---:|---:|\n")
	seen := make(map[string]bool, len(cur.Benchmarks))
	var regressions []string
	for _, c := range cur.Benchmarks {
		seen[c.Name] = true
		curOps := opsPerSec(c)
		b, ok := baseBy[c.Name]
		delta := "new"
		baseCol := "—"
		if ok {
			baseOps := opsPerSec(b)
			baseCol = fmt.Sprintf("%.1f", baseOps)
			delta = "—"
			if baseOps > 0 {
				pct := (curOps - baseOps) / baseOps * 100
				delta = fmt.Sprintf("%+.1f%%", pct)
				if pct < -regressPct {
					delta = "⚠ " + delta
					regressions = append(regressions,
						fmt.Sprintf("%s: %.1f → %.1f ops/sec (%+.1f%%)", c.Name, baseOps, curOps, pct))
				}
			}
		}
		fmt.Printf("| %s | %s | %.1f | %s | %s | %s |\n", c.Name, baseCol, curOps, delta,
			memCell(b, c, ok, "B/op"), memCell(b, c, ok, "allocs/op"))
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Printf("| %s | %.1f | — | removed | — | — |\n", b.Name, opsPerSec(b))
		}
	}
	if len(regressions) > 0 {
		fmt.Printf("\n**⚠ %d benchmark(s) regressed more than %.0f%% on the headline rate:**\n\n", len(regressions), regressPct)
		for _, r := range regressions {
			fmt.Printf("- %s\n", r)
		}
		fmt.Printf("\nBench numbers are noisy on shared runners; re-record the baseline only if the slowdown is intended.\n")
	}
	printPipelineTable(baseBy, cur.Benchmarks)
	return nil
}

// pipelineMetrics are the engine-internal rates the benchmarks lift out of
// the metrics registry (see docs/OBSERVABILITY.md): commit-pipeline shape,
// WAL fsync latency quantiles and recovery replay throughput. They get
// their own table because they explain headline movements — a txns/s drop
// with a txns/epoch drop is a batching regression, not a code slowdown.
var pipelineMetrics = []string{
	"txns/epoch", "retries/txn", "conflicts/txn", "merged/txn",
	"fsync_p50_ms", "fsync_p99_ms", "replay_recs/s", "replay_MB/s",
}

// printPipelineTable renders one row per (benchmark, pipeline metric) pair
// present in the current run; baselines missing the metric render "—".
func printPipelineTable(baseBy map[string]Benchmark, cur []Benchmark) {
	var rows [][4]string
	for _, c := range cur {
		base, hasBase := baseBy[c.Name]
		for _, m := range pipelineMetrics {
			cv, ok := c.Metrics[m]
			if !ok {
				continue
			}
			baseCol, delta := "—", "—"
			if bv, ok := base.Metrics[m]; hasBase && ok {
				baseCol = fmt.Sprintf("%.3g", bv)
				if bv != 0 {
					delta = fmt.Sprintf("%+.1f%%", (cv-bv)/bv*100)
				}
			}
			rows = append(rows, [4]string{c.Name + " · " + m, baseCol, fmt.Sprintf("%.3g", cv), delta})
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Printf("\n### Pipeline metrics (from the obs registry)\n\n")
	fmt.Printf("| benchmark · metric | baseline | current | Δ |\n")
	fmt.Printf("|---|---:|---:|---:|\n")
	for _, r := range rows {
		fmt.Printf("| %s | %s | %s | %s |\n", r[0], r[1], r[2], r[3])
	}
}
