package main

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintSrc runs collect+check over one synthetic source file.
func lintSrc(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return check(collect(fset, f))
}

func TestCleanRegistrationsPass(t *testing.T) {
	diags := lintSrc(t, `package p
func m(reg *Registry) {
	reg.Counter("repro_txn_retries_total")
	reg.Gauge("repro_storage_pipeline_inflight_epochs")
	reg.Histogram("repro_wal_fsync_seconds")
	reg.Histogram("repro_checkpoint_bytes")
	reg.Histogram("repro_storage_epoch_txns_size")
	reg.Counter("repro_storage_cache_evictions_total")
	reg.Gauge("repro_storage_cache_occupancy")
	reg.Histogram("repro_storage_cache_fault_seconds")
}`)
	if len(diags) != 0 {
		t.Errorf("clean source flagged: %v", diags)
	}
}

func TestNamingViolations(t *testing.T) {
	for _, tc := range []struct {
		src, want string
	}{
		{`reg.Counter("repro_bogus_things_total")`, "does not match"},
		{`reg.Counter("repro_txn_retries")`, "must end in _total"},
		{`reg.Histogram("repro_wal_fsync")`, "must end in one of"},
		{`reg.Gauge("repro_wal_depth_total")`, "must not carry"},
		{`reg.Gauge("repro_wal_queue_seconds")`, "must not carry"},
		{`reg.Counter("repro_txn_Retries_total")`, "does not match"},
		{`reg.Counter("repro_cache_hits_total")`, "does not match"},
	} {
		diags := lintSrc(t, "package p\nfunc m(reg *Registry) { "+tc.src+" }")
		if len(diags) != 1 || !strings.Contains(diags[0], tc.want) {
			t.Errorf("%s: diags = %v, want one containing %q", tc.src, diags, tc.want)
		}
	}
}

func TestKindConflictAndDuplicates(t *testing.T) {
	diags := lintSrc(t, `package p
func a(reg *Registry) { reg.Counter("repro_txn_aborts_total") }
func b(reg *Registry) { reg.Gauge("repro_txn_aborts_total") }`)
	found := false
	for _, d := range diags {
		if strings.Contains(d, "registered as Gauge here but as Counter") {
			found = true
		}
	}
	if !found {
		t.Errorf("kind conflict not reported: %v", diags)
	}

	diags = lintSrc(t, `package p
func a(reg *Registry) { reg.Counter("repro_txn_aborts_total") }
func b(reg *Registry) { reg.Counter("repro_txn_aborts_total") }`)
	if len(diags) != 1 || !strings.Contains(diags[0], "already registered") {
		t.Errorf("duplicate not reported: %v", diags)
	}
}

func TestNonLiteralAndUnrelatedCallsIgnored(t *testing.T) {
	diags := lintSrc(t, `package p
func m(reg *Registry, name string) {
	reg.Counter(name)          // variable: runtime check covers it
	other.Counter()            // wrong arity
	fmt.Println("repro_x")     // not a registration
}`)
	if len(diags) != 0 {
		t.Errorf("unexpected diagnostics: %v", diags)
	}
}

// TestRepoIsClean runs the real walk over this repository, pinning that the
// committed registration sites satisfy the convention — the same invocation
// CI performs.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("repo root not found: %v", err)
	}
	diags, err := lintDirs([]string{root})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("repository has obslint findings:\n%s", strings.Join(diags, "\n"))
	}
}
