// Command obslint is a vet-style static check for the metric registrations
// in this repository. The obs registry already enforces its naming
// convention at runtime by panicking, but a metric behind a rarely taken
// branch (a sync policy, a recovery path) can hide a bad name from every
// test; obslint finds string-literal Counter/Gauge/Histogram registrations
// at parse time and checks them all.
//
// Checks:
//   - names match ^repro_(txn|storage|wal|index|checkpoint|recovery)_[a-z0-9_]+$
//   - counters end in _total; histograms in _seconds, _bytes or _size;
//     gauges in neither (mirrors internal/obs's runtime rule)
//   - the same name is never registered as two different kinds
//   - each name has exactly one registration site (metrics have one owner;
//     the registry's get-or-create semantics would silently alias them)
//
// Test files are skipped: the obs package's own tests register invalid
// names on purpose to pin the runtime panics.
//
// Usage: obslint [dir ...]   (default: the current directory tree)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var nameRe = regexp.MustCompile(`^repro_(txn|storage_cache|storage|wal|index|checkpoint|recovery)_[a-z0-9_]+$`)

var histSuffixes = []string{"_seconds", "_bytes", "_size"}

// site is one string-literal registration call.
type site struct {
	pos  token.Position
	kind string // Counter, Gauge or Histogram
	name string
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	diags, err := lintDirs(dirs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obslint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// lintDirs walks the given trees, collects registration sites from every
// non-test .go file, and returns sorted "file:line: message" diagnostics.
func lintDirs(dirs []string) ([]string, error) {
	fset := token.NewFileSet()
	var sites []site
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				switch d.Name() {
				case "testdata", "vendor", ".git":
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			sites = append(sites, collect(fset, f)...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return check(sites), nil
}

// collect finds Counter/Gauge/Histogram calls whose sole argument is a
// string literal. Calls forwarding a variable are invisible to obslint by
// design — the runtime check still covers them.
func collect(fset *token.FileSet, f *ast.File) []site {
	var out []site
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind := sel.Sel.Name
		if kind != "Counter" && kind != "Gauge" && kind != "Histogram" {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		out = append(out, site{pos: fset.Position(lit.Pos()), kind: kind, name: name})
		return true
	})
	return out
}

// check runs every rule over the collected sites.
func check(sites []site) []string {
	var diags []string
	add := func(s site, format string, args ...any) {
		diags = append(diags, fmt.Sprintf("%s: %s", s.pos, fmt.Sprintf(format, args...)))
	}
	byName := map[string][]site{}
	for _, s := range sites {
		byName[s.name] = append(byName[s.name], s)
		if !nameRe.MatchString(s.name) {
			add(s, "metric %q does not match %s", s.name, nameRe)
			continue
		}
		hasHistSuffix := false
		for _, suf := range histSuffixes {
			if strings.HasSuffix(s.name, suf) {
				hasHistSuffix = true
			}
		}
		switch s.kind {
		case "Counter":
			if !strings.HasSuffix(s.name, "_total") {
				add(s, "counter %q must end in _total", s.name)
			}
		case "Histogram":
			if !hasHistSuffix {
				add(s, "histogram %q must end in one of %v", s.name, histSuffixes)
			}
		case "Gauge":
			if strings.HasSuffix(s.name, "_total") || hasHistSuffix {
				add(s, "gauge %q must not carry a counter or histogram suffix", s.name)
			}
		}
	}
	for name, ss := range byName {
		if len(ss) < 2 {
			continue
		}
		kinds := map[string]bool{}
		for _, s := range ss {
			kinds[s.kind] = true
		}
		first := ss[0]
		for _, s := range ss[1:] {
			if len(kinds) > 1 {
				add(s, "metric %q registered as %s here but as %s at %s", name, s.kind, first.kind, first.pos)
			} else {
				add(s, "metric %q already registered at %s (metrics have one owning site)", name, first.pos)
			}
		}
	}
	sort.Strings(diags)
	return diags
}
