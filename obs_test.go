// Facade-level observability tests: one registry covering every engine
// layer, the Prometheus/expvar surfaces, and the null-path overhead guard.
package repro

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// collectingTracer records event kinds concurrently.
type collectingTracer struct {
	mu    sync.Mutex
	kinds map[obs.EventKind]int
}

func newCollectingTracer() *collectingTracer {
	return &collectingTracer{kinds: make(map[obs.EventKind]int)}
}

func (c *collectingTracer) Event(e obs.Event) {
	c.mu.Lock()
	c.kinds[e.Kind]++
	c.mu.Unlock()
}

func (c *collectingTracer) count(k obs.EventKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kinds[k]
}

// TestMetricsCoverAllLayers drives a durable database through transaction
// execution, index probing, WAL appends, a checkpoint and a recovery, and
// asserts one registry ends up holding live metrics from all five
// instrumented layers (txn, storage, wal, index, checkpoint/recovery).
func TestMetricsCoverAllLayers(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	tr := newCollectingTracer()
	db, err := OpenChecked(&Options{
		Dir: dir, Sync: SyncOff, CheckpointBytes: -1,
		Indexes: []string{"kv(id)"},
		Metrics: reg, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreateRelation(`relation kv(id int, v int)`)
	for i := 0; i < 20; i++ {
		if _, err := db.Submit(fmt.Sprintf(`begin insert(kv, values[(%d, %d)]); end`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// An equality selection on the indexed column probes instead of scans;
	// running it after the checkpoint leaves a WAL tail for the reopen.
	if _, err := db.Submit(`begin delete(kv, select(kv, id = 3)); end`); err != nil {
		t.Fatal(err)
	}
	snap := db.Metrics()
	for _, name := range []string{
		"repro_txn_statements_total",  // txn layer
		"repro_txn_attempts_total",    // txn layer
		"repro_storage_commits_total", // storage pipeline
		"repro_storage_epochs_total",  // storage pipeline
		"repro_wal_appends_total",     // WAL
		"repro_index_probes_total",    // index access paths
		"repro_checkpoint_runs_total", // checkpoint
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
	}
	for _, name := range []string{
		"repro_storage_epoch_txns_size",
		"repro_storage_stage_validate_seconds",
		"repro_wal_append_bytes",
		"repro_txn_read_relations_size",
		"repro_checkpoint_seconds",
	} {
		if snap.Histograms[name].Count == 0 {
			t.Errorf("histogram %s empty, want observations", name)
		}
	}
	for _, k := range []obs.EventKind{
		obs.EvTxnBegin, obs.EvTxnEnqueue, obs.EvTxnValidate, obs.EvTxnProbe,
		obs.EvWALAppend, obs.EvTxnCommit, obs.EvEpochPublish,
		obs.EvCheckpointStart, obs.EvCheckpointEnd,
	} {
		if tr.count(k) == 0 {
			t.Errorf("tracer never saw %s", k)
		}
	}

	// Prometheus exposition carries the same registry.
	var sb strings.Builder
	if err := db.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	prom := sb.String()
	for _, want := range []string{
		"# TYPE repro_storage_commits_total counter",
		"# TYPE repro_wal_append_seconds histogram",
		"repro_wal_append_seconds_count",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
	db.PublishExpvar("repro-obs-test") // must not panic; re-publish is a no-op
	db.PublishExpvar("repro-obs-test")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen on a fresh registry: the WAL tail past the checkpoint replays
	// (the post-checkpoint delete), populating the recovery metrics.
	reg2 := obs.NewRegistry()
	db2, err := OpenChecked(&Options{Dir: dir, Sync: SyncOff, CheckpointBytes: -1, Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n, err := db2.Count("kv"); err != nil || n != 19 {
		t.Fatalf("recovered kv: %d rows, err %v; want 19", n, err)
	}
	snap2 := db2.Metrics()
	if snap2.Counters["repro_recovery_replayed_records_total"] == 0 {
		t.Error("recovery replayed no records; the post-checkpoint delete should be in the tail")
	}
	if snap2.Histograms["repro_recovery_open_seconds"].Count == 0 {
		t.Error("recovery open duration not observed")
	}
}

// TestObsOverheadGuard bounds the cost of the always-on instrumentation:
// the default path (private registry, no tracer) must stay within a
// generous margin of the fully disabled path on the low-conflict submit
// workload. The real margin is low single-digit percent (see
// docs/OBSERVABILITY.md); the guard uses a loose bound so scheduler noise
// does not flake CI.
func TestObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing guard meaningless under the race detector")
	}
	run := func(disable bool) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			db := newShardedDBOpts(b, 4, 100, nil)
			if disable {
				db.store.SetObservability(nil, nil)
			}
			srcs := make([]string, b.N)
			for i := range srcs {
				srcs[i] = fmt.Sprintf(`begin insert(child%d, values[(%d, %d, 1)]); end`, i%4, i, i%100)
			}
			b.ResetTimer()
			for _, pr := range db.ExecParallel(srcs, 8) {
				if pr.Err != nil {
					b.Fatal(pr.Err)
				}
			}
		})
		return float64(r.NsPerOp())
	}
	run(true) // warm caches before either measured pass
	off := run(true)
	on := run(false)
	if ratio := on / off; ratio > 1.25 {
		t.Errorf("observability overhead %.1f%% (on %.0f ns/op, off %.0f ns/op) exceeds the guard",
			(ratio-1)*100, on, off)
	} else {
		t.Logf("observability overhead %.1f%% (on %.0f ns/op, off %.0f ns/op)", (ratio-1)*100, on, off)
	}
}
