// Facade-level durability tests: Options.Dir end to end — commit, crash
// (abandon without Close), reopen, verify; plus rules, indexes and
// EnsureRelation across reopen. The storage-level crash-point property test
// lives in internal/storage.
package repro

import (
	"fmt"
	"testing"
)

func durableOpen(t *testing.T, dir string, opts Options) *DB {
	t.Helper()
	opts.Dir = dir
	db, err := OpenChecked(&opts)
	if err != nil {
		t.Fatalf("OpenChecked(%s): %v", dir, err)
	}
	return db
}

func setupInventory(t *testing.T, db *DB) {
	t.Helper()
	if err := db.EnsureRelation(`relation stock(item string, qty int)`); err != nil {
		t.Fatalf("EnsureRelation stock: %v", err)
	}
	if err := db.EnsureRelation(`relation orders(item string, n int)`); err != nil {
		t.Fatalf("EnsureRelation orders: %v", err)
	}
}

func mustSubmit(t *testing.T, db *DB, src string) {
	t.Helper()
	res, err := db.Submit(src)
	if err != nil {
		t.Fatalf("Submit(%s): %v", src, err)
	}
	if !res.Committed {
		t.Fatalf("Submit(%s): aborted: %s", src, res.Reason)
	}
}

func queryInts(t *testing.T, db *DB, expr string) []int64 {
	t.Helper()
	rows, err := db.Query(expr)
	if err != nil {
		t.Fatalf("Query(%s): %v", expr, err)
	}
	var out []int64
	for _, r := range rows.Data {
		out = append(out, r[0].(int64))
	}
	return out
}

// TestDurableReopen commits through the facade, closes, reopens and expects
// the full state — contents, rules re-defined by setup code, and committed
// transactions from the second incarnation — to line up.
func TestDurableReopen(t *testing.T) {
	dir := t.TempDir()

	db := durableOpen(t, dir, Options{})
	setupInventory(t, db)
	db.MustDefineConstraint("nonneg", `forall x (x in stock implies x.qty >= 0)`)
	mustSubmit(t, db, `begin insert(stock, values[("bolt", 40), ("nut", 15)]); end`)
	mustSubmit(t, db, `begin update(stock, item = "nut", [qty = qty - 5]); end`)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db = durableOpen(t, dir, Options{})
	setupInventory(t, db) // must be a no-op on the recovered relations
	db.MustDefineConstraint("nonneg", `forall x (x in stock implies x.qty >= 0)`)
	if got := queryInts(t, db, `project(select(stock, item = "nut"), qty)`); len(got) != 1 || got[0] != 10 {
		t.Fatalf("recovered nut qty = %v, want [10]", got)
	}
	if n, _ := db.Count("stock"); n != 2 {
		t.Fatalf("recovered stock count = %d, want 2", n)
	}
	// The recovered database still enforces: overdraw must abort.
	res, err := db.Submit(`begin update(stock, item = "nut", [qty = qty - 50]); end`)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Committed {
		t.Fatalf("overdraw committed on recovered database")
	}
	// And still accepts new commits that survive another reopen.
	mustSubmit(t, db, `begin insert(stock, values[("washer", 7)]); end`)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db = durableOpen(t, dir, Options{})
	defer db.Close()
	if n, _ := db.Count("stock"); n != 3 {
		t.Fatalf("stock count after second reopen = %d, want 3", n)
	}
}

// TestDurableCrashReopen abandons the database without Close (the facade
// analogue of a process crash: under SyncAlways every acknowledged commit is
// already fsynced) and reopens the directory.
func TestDurableCrashReopen(t *testing.T) {
	dir := t.TempDir()

	db := durableOpen(t, dir, Options{Sync: SyncAlways})
	setupInventory(t, db)
	for i := 0; i < 20; i++ {
		mustSubmit(t, db, fmt.Sprintf(`begin insert(stock, values[("item%d", %d)]); end`, i, i))
	}
	// No Close: the WAL tail is whatever SyncAlways already made durable,
	// which is every acknowledged commit.

	db2 := durableOpen(t, dir, Options{})
	defer db2.Close()
	if n, _ := db2.Count("stock"); n != 20 {
		t.Fatalf("recovered stock count = %d, want 20", n)
	}
}

// TestDurableIndexesReopen reopens with Options.Indexes covering
// both recovered relations (applied at open, duplicates skipped) and ones
// created later.
func TestDurableIndexesReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Indexes: []string{"stock(item)", "stock(qty) ordered"}}

	db := durableOpen(t, dir, opts)
	setupInventory(t, db)
	mustSubmit(t, db, `begin insert(stock, values[("bolt", 40)]); end`)
	want := fmt.Sprintf("%v", db.Indexes())
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Index definitions are themselves durable; reopening with the same
	// declarations must not double-define them.
	db = durableOpen(t, dir, opts)
	if got := fmt.Sprintf("%v", db.Indexes()); got != want {
		t.Fatalf("recovered indexes = %s, want %s", got, want)
	}
	// And a probe against the recovered index still answers correctly.
	if got := queryInts(t, db, `project(select(stock, item = "bolt"), qty)`); len(got) != 1 || got[0] != 40 {
		t.Fatalf("probe on recovered index = %v, want [40]", got)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestEnsureRelationMismatch verifies the idempotent-creation contract.
func TestEnsureRelationMismatch(t *testing.T) {
	db := Open(nil)
	if err := db.EnsureRelation(`relation r(a int)`); err != nil {
		t.Fatalf("EnsureRelation: %v", err)
	}
	if err := db.EnsureRelation(`relation r(a int)`); err != nil {
		t.Fatalf("EnsureRelation (repeat): %v", err)
	}
	if err := db.EnsureRelation(`relation r(a string)`); err == nil {
		t.Fatalf("EnsureRelation with different attrs: want error, got nil")
	}
	if db.Durable() {
		t.Fatalf("in-memory database reports Durable")
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatalf("Checkpoint on in-memory database: want error, got nil")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close on in-memory database: %v", err)
	}
}

// TestDurableSyncOptions exercises every sync policy through the facade,
// with a clean Close (which makes even SyncOff fully durable).
func TestDurableSyncOptions(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncAlways, SyncBatched, SyncOff} {
		dir := t.TempDir()
		db := durableOpen(t, dir, Options{Sync: sync, CheckpointBytes: -1})
		setupInventory(t, db)
		mustSubmit(t, db, `begin insert(stock, values[("bolt", 1)]); end`)
		if err := db.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		db = durableOpen(t, dir, Options{})
		if n, _ := db.Count("stock"); n != 1 {
			t.Fatalf("sync=%d: recovered count = %d, want 1", sync, n)
		}
		db.Close()
	}
	if err := (&Options{Sync: SyncBatched}).Validate(); err == nil {
		t.Fatalf("Sync without Dir: want validation error")
	}
}
