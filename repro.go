// Package repro is a main-memory relational database engine with a
// declarative integrity control subsystem based on transaction modification,
// reproducing Grefen's VLDB 1993 design (PRISMA/DB): every submitted
// transaction is rewritten — extended with alarm checks and compensating
// statements derived from declaratively specified integrity rules — so that
// its execution cannot violate the integrity of the database.
//
// The core workflow:
//
//	db := repro.Open(nil)
//	db.CreateRelation(`relation beer(name string, type string, brewery string, alcohol int)`)
//	db.CreateRelation(`relation brewery(name string, city string, country string)`)
//	db.DefineConstraint("R1", `forall x (x in beer implies x.alcohol >= 0)`)
//	db.DefineRule("R2", `
//	    if not forall x (x in beer implies
//	        exists y (y in brewery and x.brewery = y.name))
//	    then
//	        temp := diff(project(beer, brewery), project(brewery, name));
//	        insert(brewery, project(temp, #1 as name, null as city, null as country))`)
//	res, err := db.Submit(`begin
//	    insert(beer, values[("exportgold", "stout", "guineken", 6)]);
//	end`)
//
// Constraints are written in CL, a tuple relational calculus with aggregates
// (Section 4.1 of the paper); rules in RL, "WHEN triggers IF NOT condition
// THEN action" (Definition 4.7). Trigger sets are generated from conditions
// automatically (Algorithm 5.7) unless specified. Rules compile at
// definition time into integrity programs (Definition 6.3); transaction
// modification then only selects and concatenates (Algorithm 6.2).
package repro

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/algebra"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/rules"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/views"
	"repro/internal/wal"
)

// SyncPolicy selects how eagerly a durable database (Options.Dir set) fsyncs
// its write-ahead log. The zero value is SyncAlways.
type SyncPolicy int

const (
	// SyncAlways fsyncs every commit epoch before acknowledging it — one
	// group fsync covers the whole batch — so an acknowledged commit
	// survives both process and machine crashes.
	SyncAlways SyncPolicy = iota
	// SyncBatched acknowledges once the epoch's log records reach the
	// operating system and fsyncs on a short background interval:
	// acknowledged commits survive a process crash, and a machine crash
	// loses at most the last interval's worth.
	SyncBatched
	// SyncOff never fsyncs during operation (Close still flushes and
	// syncs): fastest, survives clean shutdown and process crashes only.
	SyncOff
)

func (p SyncPolicy) wal() wal.SyncPolicy {
	switch p {
	case SyncBatched:
		return wal.SyncBatched
	case SyncOff:
		return wal.SyncOff
	default:
		return wal.SyncAlways
	}
}

// Options configure a database's integrity control subsystem.
type Options struct {
	// UseDifferential enables the delta-based enforcement programs derived
	// by the rule optimizer (checks read ins(R)/del(R) instead of full
	// relations where sound).
	UseDifferential bool
	// DisableCheckPruning turns off the static safety analyzer that elides
	// enforcement checks a transaction's statement shapes provably cannot
	// make fire (relation-footprint disjointness and monotone-direction
	// analysis; see docs/ARCHITECTURE.md). Pruning is on by default and
	// only active together with UseDifferential — it selects among the
	// differential side checks and shares their base-consistency
	// assumption. Exists for ablations and the differential test harness.
	DisableCheckPruning bool
	// DynamicTranslation re-translates rules at every modification
	// (Algorithm 5.1 verbatim) instead of using precompiled integrity
	// programs (Algorithm 6.2). Slower; exists for the ablation.
	DynamicTranslation bool
	// MaxModificationDepth bounds the modification recursion; 0 means the
	// default (32).
	MaxModificationDepth int
	// MaxCommitRetries bounds how often a transaction losing optimistic
	// commit validation is re-executed against a fresh snapshot; 0 means
	// the default (txn.DefaultMaxRetries).
	MaxCommitRetries int
	// CommitShards sets the number of commit-sequencer shards relation
	// names hash onto; transactions touching disjoint shards validate and
	// commit concurrently. 0 means the default (storage.DefaultShards);
	// 1 restores the fully serial commit point.
	CommitShards int
	// Indexes declares secondary indexes as "relation(attr, ...)" strings —
	// hash indexes by default, or ordered (range) indexes with the suffix
	// "ordered", as in "stock(qty) ordered", whose attribute order is the
	// sort order. Each declaration is applied when the named relation is
	// created, so the list may be set before any CreateRelation call;
	// indexes can also be added later with DB.CreateIndex. Hash-indexed
	// relations answer equality selections and enforcement joins with key
	// probes instead of scans; ordered indexes additionally answer
	// comparison selections (qty < threshold, between-style conjunctions,
	// and the negated guards of enforcement programs) with bounded range
	// probes. Probed transactions record probed-key or interval reads
	// instead of whole-relation reads.
	Indexes []string
	// DisableGroupCommit turns off commit batching: every commit claims its
	// own group-commit epoch, restoring the one-transaction-at-a-time commit
	// point. Exists for ablations and debugging; batching is on by default.
	DisableGroupCommit bool
	// GroupCommitBatch caps how many pending commits one group-commit epoch
	// may claim; 0 means unbounded (the drainer claims the whole queue as
	// one epoch). Ignored when DisableGroupCommit is set.
	GroupCommitBatch int
	// ProbeMaxDriving and ProbeScanRatio tune the probe-versus-scan decision
	// of index-driven enforcement joins: a join probes a secondary index
	// only when its driving side holds at most ProbeMaxDriving tuples or is
	// smaller than the indexed relation by more than ProbeScanRatio×.
	// 0 means the engine default (16 and 4); both must be set to take
	// effect.
	ProbeMaxDriving int
	ProbeScanRatio  int
	// AutoIndex derives secondary indexes automatically at rule definition
	// time: hash indexes from the equality-join attributes of referential
	// and pair constraints — both join directions, so the insertion-side
	// check probes the referenced relation and the deletion-side check
	// probes the referencing one — and ordered indexes from the
	// comparison-guarded attributes of domain and existential constraints,
	// so threshold-guarded alarm checks range-probe instead of scanning.
	AutoIndex bool
	// Dir, when non-empty, makes the database durable: every committed
	// group-commit epoch is appended to a write-ahead log under Dir and made
	// crash-safe per Sync, background checkpoints bound the log replayed at
	// the next open, and Open recovers the directory's prior state — schema,
	// relation contents, index definitions — before anything else. On a
	// recovered database CreateRelation fails for relations that already
	// exist; use EnsureRelation for setup code that must run on both fresh
	// and reopened directories. See docs/RECOVERY.md for the guarantees.
	Dir string
	// Sync is the write-ahead-log sync policy of a durable database; the
	// zero value is SyncAlways. Ignored when Dir is empty.
	Sync SyncPolicy
	// CheckpointBytes triggers an automatic background checkpoint once that
	// many log bytes accumulate since the last one; 0 means the engine
	// default (8 MiB), negative disables automatic checkpoints (DB.Checkpoint
	// still works). Ignored when Dir is empty.
	CheckpointBytes int64
	// CacheBytes, when positive, pages the durable database instead of
	// keeping it memory-resident: Open materializes relations as shallow
	// stubs over the newest checkpoint chain and trie nodes fault in on
	// demand through a shared node cache bounded near this many bytes (CLOCK
	// eviction, pinned roots), so relations can outgrow RAM. Commits are
	// unaffected — path-copied writes stay in memory until checkpointed.
	// 0 keeps every relation fully resident. Requires Dir.
	CacheBytes int64
	// Metrics, when non-nil, is the registry every engine metric registers
	// on — transaction execution, the commit pipeline, the WAL, index
	// maintenance and checkpoint/recovery (see docs/OBSERVABILITY.md for the
	// catalog). Sharing one registry between databases is well-defined:
	// their counters sum. When nil the database builds a private registry,
	// readable through DB.Metrics and DB.WriteProm all the same.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives transaction- and epoch-lifecycle
	// events (obs.Event) synchronously from the engine. Tracers must return
	// promptly and must not re-enter the database: most events fire inside
	// the commit pipeline, several under shard locks.
	Tracer obs.Tracer
}

// Validate reports the first invalid option: negative shard, retry or depth
// bounds (zero always means "use the default"), or a malformed index
// declaration. Open panics on invalid options; OpenChecked returns the
// error instead.
func (o *Options) Validate() error {
	if o == nil {
		return nil
	}
	if o.CommitShards < 0 {
		return fmt.Errorf("repro: Options.CommitShards must be positive (or 0 for the default %d), got %d",
			storage.DefaultShards, o.CommitShards)
	}
	if o.MaxCommitRetries < 0 {
		return fmt.Errorf("repro: Options.MaxCommitRetries must be positive (or 0 for the default %d), got %d",
			txn.DefaultMaxRetries, o.MaxCommitRetries)
	}
	if o.MaxModificationDepth < 0 {
		return fmt.Errorf("repro: Options.MaxModificationDepth must be positive (or 0 for the default), got %d",
			o.MaxModificationDepth)
	}
	if o.GroupCommitBatch < 0 {
		return fmt.Errorf("repro: Options.GroupCommitBatch must be positive (or 0 for unbounded), got %d",
			o.GroupCommitBatch)
	}
	if o.ProbeMaxDriving < 0 {
		return fmt.Errorf("repro: Options.ProbeMaxDriving must be positive (or 0 for the default), got %d",
			o.ProbeMaxDriving)
	}
	if o.ProbeScanRatio < 0 {
		return fmt.Errorf("repro: Options.ProbeScanRatio must be positive (or 0 for the default), got %d",
			o.ProbeScanRatio)
	}
	if o.Sync < SyncAlways || o.Sync > SyncOff {
		return fmt.Errorf("repro: Options.Sync must be SyncAlways, SyncBatched or SyncOff, got %d", o.Sync)
	}
	if o.Sync != SyncAlways && o.Dir == "" {
		return fmt.Errorf("repro: Options.Sync requires Options.Dir (an in-memory database has no log to sync)")
	}
	if o.CacheBytes < 0 {
		return fmt.Errorf("repro: Options.CacheBytes must be positive (or 0 for fully resident), got %d", o.CacheBytes)
	}
	if o.CacheBytes > 0 && o.Dir == "" {
		return fmt.Errorf("repro: Options.CacheBytes requires Options.Dir (paging needs a checkpoint chain to fault from)")
	}
	for _, decl := range o.Indexes {
		if _, _, _, err := index.ParseDecl(decl); err != nil {
			return fmt.Errorf("repro: Options.Indexes: %w", err)
		}
	}
	return nil
}

// CommitStats reports the engine's commit-sequencer counters.
type CommitStats struct {
	// Shards is the configured number of commit-sequencer shards.
	Shards int
	// Commits counts installed commits (including read-only ones, which
	// still advance the logical clock).
	Commits uint64
	// Conflicts counts first-committer-wins validation failures; each one
	// made some transaction re-execute against a fresh snapshot.
	Conflicts uint64
	// CrossShardCommits counts commits whose read/write sets spanned more
	// than one shard (two-phase canonical-order commits).
	CrossShardCommits uint64
	// MergedCommits counts commits that overlapped a concurrent writer of
	// the same relation on disjoint tuples and were installed by delta
	// merging instead of retrying — the commits relation-granular
	// validation would have rejected.
	MergedCommits uint64
	// Epochs counts group-commit epochs that installed at least one commit;
	// each epoch is one snapshot swap shared by its whole batch.
	Epochs uint64
	// TxnsPerEpoch is Commits/Epochs — the mean batch size the group-commit
	// sequencer achieved (0 before any commit).
	TxnsPerEpoch float64
	// IntraBatchMerges counts commits that merged with a disjoint co-writer
	// inside their own epoch (a subset of MergedCommits).
	IntraBatchMerges uint64
}

// DB is a main-memory database with integrity control. Transactions run
// under snapshot isolation with optimistic, first-committer-wins commit
// validation, so Submit, SubmitConcurrent, ExecParallel, Query and the
// other read accessors are safe to call from any number of goroutines once
// the schema is set up. Definition calls — CreateRelation, DefineConstraint,
// DefineRule, DefineView, DropRule — mutate the shared schema and rule
// catalog without locking and must not run concurrently with submissions,
// mirroring PRISMA/DB's split between schema management and transaction
// processing.
type DB struct {
	sch   *schema.Database
	store *storage.Database
	exec  *txn.Executor
	cat   *rules.Catalog
	sub   *core.Subsystem
	opts  Options

	elidedTotal   *obs.Counter
	repairedTotal *obs.Counter

	viewNames map[string]bool
}

// Open creates an empty database. A nil opts selects the defaults
// (precompiled rules, full-state checks). Invalid options — negative
// bounds, malformed index declarations — panic with a descriptive error;
// use OpenChecked to receive the error instead.
func Open(opts *Options) *DB {
	db, err := OpenChecked(opts)
	if err != nil {
		panic(err)
	}
	return db
}

// OpenChecked is Open returning option-validation errors instead of
// panicking.
func OpenChecked(opts *Options) (*DB, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	sch := schema.MustDatabase()
	shards := o.CommitShards
	if shards <= 0 {
		shards = storage.DefaultShards
	}
	var store *storage.Database
	if o.Dir != "" {
		// The WAL writer and recovery replay resolve their metric handles at
		// open time, so the registry must exist before storage.Open — a
		// caller-supplied one, or a fresh private one (readable through
		// DB.Metrics) so the durable layers are never dark.
		reg := o.Metrics
		if reg == nil {
			reg = obs.NewRegistry()
		}
		s, err := storage.Open(o.Dir, sch, storage.DurOptions{
			Shards:          shards,
			Sync:            o.Sync.wal(),
			CheckpointBytes: o.CheckpointBytes,
			CacheBytes:      o.CacheBytes,
			Metrics:         reg,
			Tracer:          o.Tracer,
		})
		if err != nil {
			return nil, err
		}
		store = s
		// A reopened directory's stored schema supersedes the empty one.
		sch = store.Schema()
	} else {
		store = storage.NewSharded(sch, shards)
		if o.Metrics != nil || o.Tracer != nil {
			reg := o.Metrics
			if reg == nil {
				reg = store.Registry() // keep the private registry, attach the tracer
			}
			store.SetObservability(reg, o.Tracer)
		}
	}
	batch := o.GroupCommitBatch
	if o.DisableGroupCommit {
		batch = 1
	}
	store.SetEpochLimit(batch)
	exec := txn.NewExecutor(store)
	exec.SetProbeTuning(o.ProbeMaxDriving, o.ProbeScanRatio)
	cat := rules.NewCatalog(sch)
	db := &DB{
		sch:   sch,
		store: store,
		exec:  exec,
		cat:   cat,
		opts:  o,
	}
	db.sub = core.New(cat, db.coreOptions())
	db.elidedTotal = store.Registry().Counter("repro_txn_checks_elided_total")
	db.repairedTotal = store.Registry().Counter("repro_txn_checks_repaired_total")
	if o.Dir != "" {
		// Recovered relations never pass through CreateRelation again, so
		// their Options.Indexes declarations apply here (declarations naming
		// not-yet-created relations still wait for their CreateRelation).
		if err := db.applyDeclaredIndexes(); err != nil {
			_ = store.Close()
			return nil, err
		}
	}
	return db, nil
}

// applyDeclaredIndexes builds the Options.Indexes declarations whose
// relations already exist — the recovered relations of a durable reopen.
// Indexes already defined (typically recovered ones) are kept.
func (db *DB) applyDeclaredIndexes() error {
	for _, decl := range db.opts.Indexes {
		rel, attrs, ordered, err := index.ParseDecl(decl)
		if err != nil {
			continue // Validate reported malformed declarations
		}
		rs, ok := db.sch.Relation(rel)
		if !ok {
			continue
		}
		cols := make([]int, len(attrs))
		for i, a := range attrs {
			idx := rs.AttrIndex(a)
			if idx < 0 {
				return fmt.Errorf("repro: Options.Indexes %q: unknown attribute %q in %s", decl, a, rs)
			}
			cols[i] = idx
		}
		// Hash defs canonicalize to ascending column order; compare sorted
		// signatures so a reordered declaration is still seen as existing.
		want := append([]int(nil), cols...)
		defs := db.store.IndexDefs(rel)
		if ordered {
			defs = db.store.OrderedIndexDefs(rel)
		} else {
			sort.Ints(want)
		}
		exists := false
		for _, d := range defs {
			if index.Sig(d) == index.Sig(want) {
				exists = true
				break
			}
		}
		if exists {
			continue
		}
		if ordered {
			err = db.store.DefineOrderedIndex(rel, cols)
		} else {
			err = db.store.DefineIndex(rel, cols)
		}
		if err != nil {
			return fmt.Errorf("repro: applying Options.Indexes: %w", err)
		}
	}
	return nil
}

func (db *DB) coreOptions() core.Options {
	return core.Options{
		UseDifferential: db.opts.UseDifferential,
		Dynamic:         db.opts.DynamicTranslation,
		MaxDepth:        db.opts.MaxModificationDepth,
		Prune:           !db.opts.DisableCheckPruning,
	}
}

// CreateRelation declares a relation from DDL text:
// "relation beer(name string, type string, brewery string, alcohol int)".
// Types: int, float, string, bool. Declarations in Options.Indexes naming
// the relation are built immediately; an index declaration referencing an
// unknown attribute fails the creation.
func (db *DB) CreateRelation(ddl string) error {
	rs, err := lang.ParseRelationSchema(ddl)
	if err != nil {
		return err
	}
	// Resolve the relation's Options.Indexes declarations before touching
	// the schema or store, so a declaration naming a missing attribute
	// fails the creation atomically instead of leaving the relation
	// half-created.
	type pendingIndex struct {
		cols    []int
		ordered bool
	}
	var pending []pendingIndex
	seen := make(map[string]bool)
	for _, decl := range db.opts.Indexes {
		rel, attrs, ordered, err := index.ParseDecl(decl)
		if err != nil || rel != rs.Name {
			continue // Validate caught malformed declarations at Open
		}
		cols := make([]int, len(attrs))
		for i, a := range attrs {
			idx := rs.AttrIndex(a)
			if idx < 0 {
				return fmt.Errorf("repro: Options.Indexes %q: unknown attribute %q in %s", decl, a, rs)
			}
			cols[i] = idx
		}
		// Hash signatures canonicalize to ascending order; ordered
		// signatures keep declared order (it is the sort order) and live in
		// their own namespace.
		sigCols := cols
		sigPrefix := ""
		if !ordered {
			sigCols = append([]int(nil), cols...)
			sort.Ints(sigCols)
		} else {
			sigPrefix = "ordered:"
		}
		if sig := sigPrefix + index.Sig(sigCols); !seen[sig] {
			seen[sig] = true
			pending = append(pending, pendingIndex{cols: cols, ordered: ordered})
		}
	}
	if err := db.sch.Add(rs); err != nil {
		return err
	}
	if err := db.store.AddRelation(rs); err != nil {
		return err
	}
	for _, p := range pending {
		var err error
		if p.ordered {
			err = db.store.DefineOrderedIndex(rs.Name, p.cols)
		} else {
			err = db.store.DefineIndex(rs.Name, p.cols)
		}
		if err != nil {
			return fmt.Errorf("repro: applying Options.Indexes: %w", err)
		}
	}
	return nil
}

// CreateIndex declares a secondary index from "relation(attr, ...)" text —
// a hash index, or an ordered (range) index with the "ordered" suffix, as
// in "stock(qty) ordered" — building it from the relation's current
// contents. Like the other definition calls it must not run concurrently
// with submissions. Indexes over the same attribute set (within their kind)
// are rejected as duplicates.
func (db *DB) CreateIndex(decl string) error {
	rel, attrs, ordered, err := index.ParseDecl(decl)
	if err != nil {
		return err
	}
	rs, err := db.sch.MustFind(rel)
	if err != nil {
		return err
	}
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		idx := rs.AttrIndex(a)
		if idx < 0 {
			return fmt.Errorf("repro: index %s: unknown attribute %q in %s", decl, a, rs)
		}
		cols[i] = idx
	}
	if ordered {
		return db.store.DefineOrderedIndex(rel, cols)
	}
	return db.store.DefineIndex(rel, cols)
}

// MustCreateIndex is CreateIndex that panics on error; for examples and
// tests.
func (db *DB) MustCreateIndex(decl string) {
	if err := db.CreateIndex(decl); err != nil {
		panic(err)
	}
}

// Indexes returns the defined secondary indexes as "relation(attr, ...)"
// declarations — ordered indexes carry the "ordered" suffix — sorted.
func (db *DB) Indexes() []string {
	var out []string
	for _, name := range db.sch.Names() {
		rs, _ := db.sch.Relation(name)
		for _, cols := range db.store.IndexDefs(name) {
			attrs := make([]string, len(cols))
			for i, c := range cols {
				attrs[i] = rs.Attrs[c].Name
			}
			out = append(out, fmt.Sprintf("%s(%s)", name, strings.Join(attrs, ", ")))
		}
		for _, cols := range db.store.OrderedIndexDefs(name) {
			attrs := make([]string, len(cols))
			for i, c := range cols {
				attrs[i] = rs.Attrs[c].Name
			}
			out = append(out, fmt.Sprintf("%s(%s) ordered", name, strings.Join(attrs, ", ")))
		}
	}
	sort.Strings(out)
	return out
}

// autoIndex builds the indexes a freshly compiled rule's enforcement joins
// would exploit; existing indexes over the same columns are kept.
func (db *DB) autoIndex(ruleName string) error {
	if !db.opts.AutoIndex {
		return nil
	}
	ip, ok := db.cat.Program(ruleName)
	if !ok {
		return nil
	}
	for _, h := range ip.IndexHints {
		defs := db.store.IndexDefs(h.Relation)
		if h.Ordered {
			defs = db.store.OrderedIndexDefs(h.Relation)
		}
		exists := false
		for _, cols := range defs {
			if index.Sig(cols) == index.Sig(h.Columns) {
				exists = true
				break
			}
		}
		if exists {
			continue
		}
		var err error
		if h.Ordered {
			err = db.store.DefineOrderedIndex(h.Relation, h.Columns)
		} else {
			err = db.store.DefineIndex(h.Relation, h.Columns)
		}
		if err != nil {
			return fmt.Errorf("repro: auto-indexing for rule %s: %w", ruleName, err)
		}
	}
	return nil
}

// MustCreateRelation is CreateRelation that panics on error; for examples
// and tests.
func (db *DB) MustCreateRelation(ddl string) {
	if err := db.CreateRelation(ddl); err != nil {
		panic(err)
	}
}

// EnsureRelation is CreateRelation for setup code that must run on both
// fresh and reopened durable directories: if the relation already exists
// with the same attributes (same names and types, in order), it is left
// untouched — contents, indexes and all; if it exists with different
// attributes, an error describes the mismatch; otherwise it is created.
func (db *DB) EnsureRelation(ddl string) error {
	rs, err := lang.ParseRelationSchema(ddl)
	if err != nil {
		return err
	}
	if cur, ok := db.sch.Relation(rs.Name); ok {
		if cur.String() != rs.String() {
			return fmt.Errorf("repro: relation %s already exists as %s", rs, cur)
		}
		return nil
	}
	return db.CreateRelation(ddl)
}

// Durable reports whether the database persists to disk (Options.Dir set).
func (db *DB) Durable() bool { return db.store.Durable() }

// Checkpoint writes a checkpoint of the current snapshot and truncates the
// write-ahead log behind it, bounding the work the next Open must replay.
// Durable databases checkpoint automatically as log bytes accumulate (see
// Options.CheckpointBytes); an explicit call is useful before backup or
// shutdown. Errors on an in-memory database. Safe to call concurrently with
// submissions.
func (db *DB) Checkpoint() error { return db.store.Checkpoint() }

// Close flushes and fsyncs the write-ahead log and stops background
// checkpointing, making the full committed state durable regardless of the
// sync policy. The database must not be used afterwards. Close on an
// in-memory database is a no-op.
func (db *DB) Close() error { return db.store.Close() }

// DefineConstraint registers a bare CL constraint with the default aborting
// response (the paper's "default way" of Section 4). The trigger set is
// generated from the condition.
func (db *DB) DefineConstraint(name, condition string) error {
	r, err := lang.ParseConstraintRule(name, condition)
	if err != nil {
		return err
	}
	if err := db.cat.Add(r); err != nil {
		return err
	}
	return db.autoIndex(name)
}

// MustDefineConstraint panics on error.
func (db *DB) MustDefineConstraint(name, condition string) {
	if err := db.DefineConstraint(name, condition); err != nil {
		panic(err)
	}
}

// DefineRule registers a full RL integrity rule:
//
//	[when INS(r), DEL(s)]
//	if not <CL condition>
//	then abort | [nontriggering] <program>
func (db *DB) DefineRule(name, rl string) error {
	r, err := lang.ParseRule(name, rl, db.sch)
	if err != nil {
		return err
	}
	if err := db.cat.Add(r); err != nil {
		return err
	}
	return db.autoIndex(name)
}

// MustDefineRule panics on error.
func (db *DB) MustDefineRule(name, rl string) {
	if err := db.DefineRule(name, rl); err != nil {
		panic(err)
	}
}

// DropRule removes a rule by name.
func (db *DB) DropRule(name string) error { return db.cat.Remove(name) }

// DefineView creates a materialized view maintained through transaction
// modification (the paper's cited application beyond integrity control):
// any transaction updating a source relation is extended with the view's
// maintenance statements, so the view is consistent at every transaction
// boundary. With incremental=true, selection-only definitions over one base
// relation are maintained from the transaction's deltas; everything else is
// recomputed.
//
//	db.DefineView("cheap", `select(beer, alcohol < 3)`, true)
func (db *DB) DefineView(name, exprSrc string, incremental bool) error {
	prog, err := lang.ParseProgram("q := "+exprSrc, db.sch)
	if err != nil {
		return err
	}
	assign, ok := prog[0].(*algebra.Assign)
	if !ok || len(prog) != 1 {
		return fmt.Errorf("repro: view definition must be a single expression")
	}
	strategy := views.Recompute
	if incremental {
		strategy = views.Incremental
	}
	v := &views.View{Name: name, Definition: assign.Expr, Strategy: strategy}
	backing, err := views.Define(v, db.sch, db.cat, db.viewNames)
	if err != nil {
		return err
	}
	if err := db.store.AddRelation(backing); err != nil {
		db.sch.Remove(name)
		_ = db.cat.Remove("view:" + name)
		return err
	}
	if db.viewNames == nil {
		db.viewNames = make(map[string]bool)
	}
	db.viewNames[name] = true
	// Materialize the initial contents (sources may already hold data).
	refresh := algebra.Program{&algebra.Insert{Rel: name, Src: algebra.CloneExpr(assign.Expr)}}
	res, err := db.exec.Exec(txn.Bracket(refresh))
	if err != nil {
		return err
	}
	if !res.Committed {
		return fmt.Errorf("repro: initial view materialization aborted: %v", res.AbortReason)
	}
	return nil
}

// MustDefineView panics on error.
func (db *DB) MustDefineView(name, exprSrc string, incremental bool) {
	if err := db.DefineView(name, exprSrc, incremental); err != nil {
		panic(err)
	}
}

// Views returns the names of the defined materialized views, sorted.
func (db *DB) Views() []string {
	out := make([]string, 0, len(db.viewNames))
	for n := range db.viewNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RuleNames returns the defined rule names, sorted.
func (db *DB) RuleNames() []string { return db.cat.Names() }

// RuleTriggers returns the (possibly generated) trigger set of a rule as a
// display string, e.g. "INS(beer), DEL(brewery)".
func (db *DB) RuleTriggers(name string) (string, error) {
	ip, ok := db.cat.Program(name)
	if !ok {
		return "", fmt.Errorf("repro: unknown rule %q", name)
	}
	return ip.Triggers.String(), nil
}

// EnforcementProgram returns the compiled enforcement program text of a rule
// under the database's current strategy, for inspection.
func (db *DB) EnforcementProgram(name string) (string, error) {
	ip, ok := db.cat.Program(name)
	if !ok {
		return "", fmt.Errorf("repro: unknown rule %q", name)
	}
	return ip.Program(db.opts.UseDifferential).String(), nil
}

// ValidateRules analyzes the triggering graph (Definition 6.1) and returns
// an error describing any cycles — rule sets that could trigger forever.
func (db *DB) ValidateRules() error {
	return graph.Build(db.cat.Programs()).Validate()
}

// TriggeringGraphDOT renders the triggering graph in Graphviz DOT format.
func (db *DB) TriggeringGraphDOT() string {
	return graph.Build(db.cat.Programs()).DOT()
}

// ModReport summarizes what transaction modification did.
type ModReport struct {
	Depth          int
	OriginalStmts  int
	FinalStmts     int
	RulesTriggered map[string]int
	ModifiedText   string
	// ChecksElided counts compiled check programs the static safety
	// analyzer proved this transaction shape cannot make fire; each one ran
	// neither reads nor probes.
	ChecksElided int
	// ChecksRepaired counts repair programs appended in place of plain
	// alarm checks (constraints declared with an "on violation" clause).
	ChecksRepaired int
}

// Result reports the outcome of a submitted transaction.
type Result struct {
	Committed   bool
	Constraint  string // violated constraint name when integrity aborted
	Reason      string // abort reason text, empty on commit
	Report      *ModReport
	Inserted    int
	Deleted     int
	Probes      int    // secondary-index probes issued instead of scans (key + range)
	RangeProbes int    // ordered-index range probes among Probes, each recording an interval read
	Retries     int    // conflict-induced re-executions before the outcome
	CommitTime  uint64 // logical time of the installed state; 0 if aborted
	// ChecksElided counts enforcement checks the static safety analyzer
	// proved unnecessary for this transaction (also in Report).
	ChecksElided int
	// ChecksRepaired counts repair programs appended to this transaction
	// by constraints with an "on violation" clause (also in Report).
	ChecksRepaired int
}

// Submit parses "begin ... end" transaction text, modifies it under the
// defined rules, and executes it atomically. Integrity violations abort the
// transaction and are reported in the Result (not as an error); errors are
// reserved for malformed input.
func (db *DB) Submit(src string) (*Result, error) {
	prog, err := lang.ParseTransaction(src, db.sch)
	if err != nil {
		return nil, err
	}
	return db.submit(txn.Bracket(prog), true)
}

// SubmitUnchecked executes transaction text without integrity control; the
// cost floor used by benchmarks, and deliberately dangerous otherwise.
func (db *DB) SubmitUnchecked(src string) (*Result, error) {
	prog, err := lang.ParseTransaction(src, db.sch)
	if err != nil {
		return nil, err
	}
	return db.submit(txn.Bracket(prog), false)
}

// SubmitPostHoc executes transaction text with the post-hoc baseline: the
// transaction runs unmodified and every aborting rule is checked in full
// against the pre-commit state. Compensating rules are rejected (their
// corrective updates only exist under transaction modification).
func (db *DB) SubmitPostHoc(src string, triggerAware bool) (*Result, error) {
	prog, err := lang.ParseTransaction(src, db.sch)
	if err != nil {
		return nil, err
	}
	res, err := baseline.NewPostHoc(db.cat, triggerAware).Exec(db.exec, txn.Bracket(prog))
	if err != nil {
		return nil, err
	}
	return db.toResult(res, nil), nil
}

// SubmitConcurrent is Submit for multi-goroutine callers: the transaction
// executes against a pinned snapshot while other submissions proceed in
// parallel, and commits through first-committer-wins validation, retrying
// against a fresh snapshot (alarm checks re-run) up to the configured
// bound. An exhausted retry budget is reported as an aborted Result (empty
// Constraint, Reason describing the exhausted retries — Reason is a plain
// string, so sentinel matching with txn.ErrRetriesExhausted is not
// available at this boundary); the database is left untouched.
//
// Submit and SubmitConcurrent share one engine and may be mixed freely —
// the separate name exists so call sites can state intent.
func (db *DB) SubmitConcurrent(src string) (*Result, error) {
	return db.Submit(src)
}

// ParallelResult pairs a transaction submitted through ExecParallel with
// its outcome. Err is non-nil only for malformed input (parse or type
// errors); integrity aborts and retry exhaustion are reported in Result.
type ParallelResult struct {
	Src    string
	Result *Result
	Err    error
}

// ExecParallel submits the transactions through a pool of `workers`
// goroutines and returns per-transaction results in input order. Each
// transaction is modified, executed against its own snapshot, and committed
// via optimistic validation with bounded retries; the set of committed
// transactions is serializable in some order, so no committed state can
// violate a defined constraint. workers < 1 means one worker.
func (db *DB) ExecParallel(srcs []string, workers int) []ParallelResult {
	if workers < 1 {
		workers = 1
	}
	if workers > len(srcs) {
		workers = len(srcs)
	}
	out := make([]ParallelResult, len(srcs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := db.SubmitConcurrent(srcs[i])
				out[i] = ParallelResult{Src: srcs[i], Result: res, Err: err}
			}
		}()
	}
	for i := range srcs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

func (db *DB) submit(t *txn.Transaction, withIntegrity bool) (*Result, error) {
	var report *core.Report
	if withIntegrity {
		modified, rep, err := db.sub.Modify(t)
		if err != nil {
			return nil, err
		}
		t = modified
		report = rep
		if rep.ChecksElided > 0 {
			db.elidedTotal.Add(uint64(rep.ChecksElided))
		}
		if rep.ChecksRepaired > 0 {
			db.repairedTotal.Add(uint64(rep.ChecksRepaired))
		}
	}
	retries := txn.DefaultMaxRetries
	if db.opts.MaxCommitRetries > 0 {
		retries = db.opts.MaxCommitRetries
	}
	res, err := db.exec.ExecOptimistic(t, nil, retries)
	if err != nil {
		return nil, err
	}
	out := db.toResult(res, report)
	if report != nil {
		out.Report.ModifiedText = t.String()
	}
	return out, nil
}

func (db *DB) toResult(res *txn.Result, report *core.Report) *Result {
	out := &Result{
		Committed:   res.Committed,
		Inserted:    res.Stats.TuplesInserted,
		Deleted:     res.Stats.TuplesDeleted,
		Probes:      res.Stats.IndexProbes + res.Stats.RangeProbes,
		RangeProbes: res.Stats.RangeProbes,
		Retries:     res.Retries,
		CommitTime:  res.CommitTime,
	}
	if res.AbortReason != nil {
		out.Reason = res.AbortReason.Error()
		var v *algebra.ViolationError
		if errors.As(res.AbortReason, &v) {
			out.Constraint = v.Constraint
		}
	}
	if report != nil {
		out.ChecksElided = report.ChecksElided
		out.ChecksRepaired = report.ChecksRepaired
		out.Report = &ModReport{
			Depth:          report.Depth,
			OriginalStmts:  report.OriginalStmts,
			FinalStmts:     report.FinalStmts,
			RulesTriggered: report.RulesTriggered,
			ChecksElided:   report.ChecksElided,
			ChecksRepaired: report.ChecksRepaired,
		}
	}
	return out
}

// Explain returns the modified form of a transaction without executing it.
func (db *DB) Explain(src string) (string, *ModReport, error) {
	prog, err := lang.ParseTransaction(src, db.sch)
	if err != nil {
		return "", nil, err
	}
	modified, rep, err := db.sub.Modify(txn.Bracket(prog))
	if err != nil {
		return "", nil, err
	}
	return modified.String(), &ModReport{
		Depth:          rep.Depth,
		OriginalStmts:  rep.OriginalStmts,
		FinalStmts:     rep.FinalStmts,
		RulesTriggered: rep.RulesTriggered,
		ChecksElided:   rep.ChecksElided,
		ChecksRepaired: rep.ChecksRepaired,
	}, nil
}

// Rows is a query result: column names plus row data as native Go values
// (int64, float64, string, bool, nil).
type Rows struct {
	Columns []string
	Data    [][]any
}

// Query evaluates a relational algebra expression against the current
// database state, e.g. "select(beer, alcohol > 5)".
func (db *DB) Query(exprSrc string) (*Rows, error) {
	prog, err := lang.ParseProgram("q := "+exprSrc, db.sch)
	if err != nil {
		return nil, err
	}
	assign, ok := prog[0].(*algebra.Assign)
	if !ok || len(prog) != 1 {
		return nil, fmt.Errorf("repro: query must be a single expression")
	}
	tenv := algebra.NewTypeEnv(db.sch)
	out, err := assign.Expr.TypeCheck(tenv)
	if err != nil {
		return nil, err
	}
	ov := txn.NewOverlay(db.store)
	ov.SetProbeTuning(db.opts.ProbeMaxDriving, db.opts.ProbeScanRatio)
	rel, err := assign.Expr.Eval(ov)
	if err != nil {
		return nil, err
	}
	rows := &Rows{Columns: out.AttrNames()}
	for _, t := range rel.SortedTuples() {
		row := make([]any, len(t))
		for i, v := range t {
			row[i] = fromValue(v)
		}
		rows.Data = append(rows.Data, row)
	}
	return rows, nil
}

// Count returns the cardinality of a relation.
func (db *DB) Count(rel string) (int, error) {
	r, err := db.store.Relation(rel)
	if err != nil {
		return 0, err
	}
	return r.Len(), nil
}

// Relations returns the declared relation names, sorted.
func (db *DB) Relations() []string { return db.sch.Names() }

// LogicalTime returns the number of committed transactions.
func (db *DB) LogicalTime() uint64 { return db.store.Time() }

// CommitStats returns a snapshot of the commit-sequencer counters: installed
// commits, validation conflicts, cross-shard (two-phase) commits and
// delta-merged commits. Safe to call concurrently with submissions.
func (db *DB) CommitStats() CommitStats {
	s := db.store.Stats()
	out := CommitStats{
		Shards:            db.store.ShardCount(),
		Commits:           s.Commits,
		Conflicts:         s.Conflicts,
		CrossShardCommits: s.CrossShardCommits,
		MergedCommits:     s.MergedCommits,
		Epochs:            s.Epochs,
		IntraBatchMerges:  s.IntraBatchMerges,
	}
	if s.Epochs > 0 {
		out.TxnsPerEpoch = float64(s.Commits) / float64(s.Epochs)
	}
	return out
}

// Metrics returns a point-in-time snapshot of every engine metric — the
// registry passed as Options.Metrics, or the database's private one. Safe to
// call concurrently with submissions; see docs/OBSERVABILITY.md for the
// metric catalog.
func (db *DB) Metrics() obs.Snapshot { return db.store.Registry().Snapshot() }

// WriteProm writes the database's metrics to w in Prometheus text exposition
// format. Mount it on an HTTP handler to scrape the engine:
//
//	http.HandleFunc("/metrics", func(w http.ResponseWriter, *http.Request) {
//		db.WriteProm(w)
//	})
func (db *DB) WriteProm(w io.Writer) error { return obs.WriteProm(w, db.store.Registry()) }

// PublishExpvar publishes the database's metric registry as an expvar
// variable under the given name (e.g. "repro"), making it visible on
// /debug/vars. Publishing the same name twice is a no-op; distinct databases
// need distinct names.
func (db *DB) PublishExpvar(name string) { obs.PublishExpvar(name, db.store.Registry()) }

// The observability types live in internal/obs; these aliases re-export the
// ones external consumers need, so Options.Metrics, Options.Tracer and
// DB.Metrics() are usable without importing an internal package.

// MetricsRegistry collects counters, gauges and histograms from every engine
// layer. Share one across databases to aggregate, or pass distinct
// registries to keep them apart. The zero value is not usable; construct
// with NewMetricsRegistry.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry for Options.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsSnapshot is the point-in-time view DB.Metrics returns: plain maps
// of counter, gauge and histogram values keyed by metric name.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is one histogram's state inside a MetricsSnapshot;
// Quantile estimates percentiles (latency histograms are in nanoseconds).
type HistogramSnapshot = obs.HistSnapshot

// Tracer receives typed transaction-lifecycle events; see
// docs/OBSERVABILITY.md for the event reference. Callbacks run inline on
// engine goroutines: keep them fast and do not call back into the database.
type Tracer = obs.Tracer

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc = obs.TracerFunc

// TraceEvent is one lifecycle event; Kind selects which fields are set.
type TraceEvent = obs.Event

// TraceEventKind identifies a TraceEvent's type.
type TraceEventKind = obs.EventKind

// Re-exported event kinds, for filtering TraceEvents by Kind.
const (
	EvTxnBegin        = obs.EvTxnBegin
	EvTxnProbe        = obs.EvTxnProbe
	EvTxnRangeProbe   = obs.EvTxnRangeProbe
	EvTxnScan         = obs.EvTxnScan
	EvTxnEnqueue      = obs.EvTxnEnqueue
	EvTxnValidate     = obs.EvTxnValidate
	EvWALAppend       = obs.EvWALAppend
	EvWALFsync        = obs.EvWALFsync
	EvTxnCommit       = obs.EvTxnCommit
	EvEpochPublish    = obs.EvEpochPublish
	EvTxnRetry        = obs.EvTxnRetry
	EvSnapshotTooOld  = obs.EvSnapshotTooOld
	EvCheckpointStart = obs.EvCheckpointStart
	EvCheckpointEnd   = obs.EvCheckpointEnd
	EvWALTruncate     = obs.EvWALTruncate
	EvRecoveryReplay  = obs.EvRecoveryReplay
)

// Load bulk-inserts rows into a relation without integrity control or
// transactional bookkeeping; intended for fixtures and benchmark data. Rows
// use native Go values (int/int64, float64, string, bool, nil).
func (db *DB) Load(rel string, rows [][]any) error {
	rs, err := db.sch.MustFind(rel)
	if err != nil {
		return err
	}
	cur, err := db.store.Relation(rel)
	if err != nil {
		return err
	}
	next := cur.Clone()
	for _, row := range rows {
		if len(row) != rs.Arity() {
			return fmt.Errorf("repro: row arity %d, want %d", len(row), rs.Arity())
		}
		t := make(relation.Tuple, len(row))
		for i, v := range row {
			tv, err := toValue(v)
			if err != nil {
				return fmt.Errorf("repro: column %s: %w", rs.Attrs[i].Name, err)
			}
			t[i] = tv
		}
		next.InsertUnchecked(t)
	}
	return db.store.Load(next)
}

// String renders a summary of the database: relations with cardinalities and
// rule names.
func (db *DB) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "database at t=%d\n", db.store.Time())
	for _, name := range db.sch.Names() {
		r, _ := db.store.Relation(name)
		rs, _ := db.sch.Relation(name)
		fmt.Fprintf(&sb, "  %s: %d tuples\n", rs, r.Len())
	}
	names := db.cat.Names()
	sort.Strings(names)
	fmt.Fprintf(&sb, "  rules: %s\n", strings.Join(names, ", "))
	return sb.String()
}

// toValue converts a native Go value to an engine value.
func toValue(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null(), nil
	case int:
		return value.Int(int64(x)), nil
	case int32:
		return value.Int(int64(x)), nil
	case int64:
		return value.Int(x), nil
	case float32:
		return value.Float(float64(x)), nil
	case float64:
		return value.Float(x), nil
	case string:
		return value.String(x), nil
	case bool:
		return value.Bool(x), nil
	default:
		return value.Null(), fmt.Errorf("unsupported value type %T", v)
	}
}

// fromValue converts an engine value to a native Go value.
func fromValue(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		return v.AsInt()
	case value.KindFloat:
		return v.AsFloat()
	case value.KindString:
		return v.AsString()
	case value.KindBool:
		return v.AsBool()
	default:
		return nil
	}
}
