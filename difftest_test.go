package repro

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/difftest"
	"repro/internal/lang"
	"repro/internal/translate"
	"repro/internal/txn"
)

// enginePair is one pruned/unpruned engine duo fed identical input.
type enginePair struct {
	pruned   *DB
	unpruned *DB
	rels     []string // relation names, for state dumps
}

func newEnginePair(t testing.TB, sc *difftest.Scenario, prunedDir, unprunedDir string) *enginePair {
	t.Helper()
	open := func(dir string, disable bool) *DB {
		opts := &Options{UseDifferential: true, DisableCheckPruning: disable}
		if dir != "" {
			opts.Dir = dir
			opts.Sync = SyncOff
		}
		return Open(opts)
	}
	p := &enginePair{pruned: open(prunedDir, false), unpruned: open(unprunedDir, true)}
	p.define(t, sc)
	return p
}

// define creates relations and constraints on both engines. A constraint
// the compiler rejects (e.g. a repair clause on an incompatible class) must
// be rejected by both engines identically and is then skipped.
func (p *enginePair) define(t testing.TB, sc *difftest.Scenario) {
	t.Helper()
	for _, ddl := range sc.Relations {
		if err := p.pruned.EnsureRelation(ddl); err != nil {
			t.Fatalf("pruned EnsureRelation(%q): %v", ddl, err)
		}
		if err := p.unpruned.EnsureRelation(ddl); err != nil {
			t.Fatalf("unpruned EnsureRelation(%q): %v", ddl, err)
		}
		name := strings.TrimSpace(strings.TrimPrefix(ddl, "relation"))
		name = name[:strings.Index(name, "(")]
		p.rels = append(p.rels, strings.TrimSpace(name))
	}
	p.rels = uniqueStrings(p.rels)
	for _, c := range sc.Constraints {
		err1 := p.pruned.DefineConstraint(c.Name, c.Cond)
		err2 := p.unpruned.DefineConstraint(c.Name, c.Cond)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("constraint %q accepted by one engine only: pruned=%v unpruned=%v", c.Cond, err1, err2)
		}
		if err1 != nil {
			continue
		}
		// Repair programs can close a triggering cycle (Definition 6.1) with
		// a previously defined rule; cyclic rule sets are rejected user
		// error, so drop the constraint that closed the cycle on both sides.
		if p.pruned.ValidateRules() != nil {
			if err := p.pruned.DropRule(c.Name); err != nil {
				t.Fatal(err)
			}
			if err := p.unpruned.DropRule(c.Name); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// submitBoth runs one transaction through both engines and asserts the
// outcomes agree: same commit/abort decision, same violated constraint, and
// identical final state of every relation. Returns whether it committed.
func (p *enginePair) submitBoth(t testing.TB, src string) bool {
	t.Helper()
	rp, errP := p.pruned.Submit(src)
	ru, errU := p.unpruned.Submit(src)
	if (errP == nil) != (errU == nil) {
		t.Fatalf("divergent submit error for %q: pruned=%v unpruned=%v", src, errP, errU)
	}
	if errP != nil {
		return false
	}
	if rp.Committed != ru.Committed {
		t.Fatalf("divergent outcome for %q: pruned committed=%v, unpruned committed=%v (pruned reason %q, unpruned reason %q)",
			src, rp.Committed, ru.Committed, rp.Reason, ru.Reason)
	}
	if rp.Constraint != ru.Constraint {
		t.Fatalf("divergent constraint for %q: pruned %q, unpruned %q", src, rp.Constraint, ru.Constraint)
	}
	if ru.ChecksElided != 0 {
		t.Fatalf("unpruned engine elided %d checks for %q", ru.ChecksElided, src)
	}
	p.compareStates(t, src)
	return rp.Committed
}

// compareStates asserts both engines hold identical relation contents.
func (p *enginePair) compareStates(t testing.TB, context string) {
	t.Helper()
	for _, rel := range p.rels {
		a := dumpRelation(t, p.pruned, rel)
		b := dumpRelation(t, p.unpruned, rel)
		if a != b {
			t.Fatalf("state divergence in %s after %q:\npruned:\n%s\nunpruned:\n%s", rel, context, a, b)
		}
	}
}

// dumpRelation renders a relation's rows in canonical sorted order.
func dumpRelation(t testing.TB, db *DB, rel string) string {
	t.Helper()
	rows, err := db.Query(rel)
	if err != nil {
		t.Fatalf("Query(%s): %v", rel, err)
	}
	lines := make([]string, 0, len(rows.Data))
	for _, r := range rows.Data {
		lines = append(lines, fmt.Sprint(r...))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func uniqueStrings(xs []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// TestDifferentialPrunedVsUnpruned is the differential property test: many
// randomized (schema, constraint set, transaction) scenarios run through
// pruned and unpruned enforcement side by side across multiple commit
// generations, asserting identical commit/alarm decisions and identical
// final states. It also requires the pruning to actually fire somewhere —
// a harness that never elides proves nothing.
func TestDifferentialPrunedVsUnpruned(t *testing.T) {
	const (
		scenarios = 48
		txnsPer   = 10
		minPairs  = 500
	)
	pairs, elided := 0, uint64(0)
	for s := 0; s < scenarios; s++ {
		rng := rand.New(rand.NewSource(0xd1ff + int64(s)))
		sc := difftest.Generate(rng, txnsPer)
		p := newEnginePair(t, sc, "", "")
		nc := len(activeConstraints(p.pruned))
		for _, src := range sc.Seed {
			p.submitBoth(t, src)
			pairs += nc
		}
		// Pruning is only sound against a consistent committed base state
		// (the paper's standing assumption for differential enforcement);
		// the generator guarantees the surviving seed establishes one.
		assertStateConsistent(t, p.pruned, "pruned base")
		assertStateConsistent(t, p.unpruned, "unpruned base")
		for _, src := range sc.Txns {
			p.submitBoth(t, src)
			pairs += nc
		}
		elided += p.pruned.Metrics().Counters["repro_txn_checks_elided_total"]
	}
	if pairs < minPairs {
		t.Fatalf("harness exercised %d (constraint, txn) pairs, want >= %d", pairs, minPairs)
	}
	if elided == 0 {
		t.Fatal("pruned engine elided no checks across the whole harness; the analyzer never fired")
	}
	t.Logf("zero divergence over %d (constraint, txn) pairs (%d checks elided)", pairs, elided)
}

// activeConstraints lists the rules actually registered (constraint
// declarations the compiler rejected are skipped by the harness).
func activeConstraints(db *DB) []string {
	var out []string
	for _, ip := range db.cat.Programs() {
		out = append(out, ip.RuleName)
	}
	return out
}

// TestDifferentialPrunedVsUnprunedDurable covers commit generations across
// a process restart: half the workload, a close-and-reopen of both engines
// (constraints redefined, as rule catalogs are not persisted), then the
// second half — states must stay identical throughout.
func TestDifferentialPrunedVsUnprunedDurable(t *testing.T) {
	for s := 0; s < 4; s++ {
		rng := rand.New(rand.NewSource(0xd04a + int64(s)))
		sc := difftest.Generate(rng, 8)
		dirP, dirU := t.TempDir(), t.TempDir()
		p := newEnginePair(t, sc, dirP, dirU)
		for _, src := range sc.Seed {
			p.submitBoth(t, src)
		}
		half := len(sc.Txns) / 2
		for _, src := range sc.Txns[:half] {
			p.submitBoth(t, src)
		}
		if err := p.pruned.Close(); err != nil {
			t.Fatal(err)
		}
		if err := p.unpruned.Close(); err != nil {
			t.Fatal(err)
		}
		p = newEnginePair(t, sc, dirP, dirU)
		p.compareStates(t, "reopen")
		for _, src := range sc.Txns[half:] {
			p.submitBoth(t, src)
		}
	}
}

// TestDifferentialConcurrentStress runs generated workloads through both
// engines with concurrent writers. Interleavings differ between the two
// engines, so states cannot be compared pairwise; the invariant under
// concurrency is that every engine's committed final state satisfies every
// constraint under a full-state recheck. Run with -race.
func TestDifferentialConcurrentStress(t *testing.T) {
	const workers = 8
	rng := rand.New(rand.NewSource(0x57e55))
	sc := difftest.Generate(rng, workers*24)
	p := newEnginePair(t, sc, "", "")
	for _, src := range sc.Seed {
		p.submitBoth(t, src)
	}
	for _, db := range []*DB{p.pruned, p.unpruned} {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(sc.Txns); i += workers {
					if _, err := db.SubmitConcurrent(sc.Txns[i]); err != nil {
						t.Errorf("submit: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
	assertStateConsistent(t, p.pruned, "pruned")
	assertStateConsistent(t, p.unpruned, "unpruned")
}

// assertStateConsistent runs every rule's full-state check program against
// the engine's current state — the brute-force ground truth.
func assertStateConsistent(t testing.TB, db *DB, label string) {
	t.Helper()
	for _, ip := range db.cat.Programs() {
		prog := algebra.CloneProgram(ip.Full)
		res, err := db.exec.ExecOptimistic(txn.Bracket(prog), nil, 4)
		if err != nil {
			t.Fatalf("%s: full check of %s: %v", label, ip.RuleName, err)
		}
		if res.AbortReason != nil {
			t.Fatalf("%s: committed state violates %s: %v", label, ip.RuleName, res.AbortReason)
		}
	}
}

// FuzzSafetyVerdict fuzzes the static safety analyzer against brute-force
// evaluation: whenever the analyzer declares every part of a rule safe for
// a generated transaction, executing that transaction with enforcement
// disabled must leave the rule's full-state check passing. The fuzz input
// seeds the scenario generator.
func FuzzSafetyVerdict(f *testing.F) {
	// Paper-flavored seeds: the beer/brewery referential example's shape
	// (section 4) maps onto ord→item; threshold domains onto qty bounds.
	f.Add([]byte("beer-brewery-referential"))
	f.Add([]byte("alcohol >= 0"))
	f.Add([]byte("qty = qty + 1 monotone away from bound"))
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := fnv.New64a()
		h.Write(data)
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		sc := difftest.Generate(rng, 1)

		db := Open(&Options{UseDifferential: true})
		for _, ddl := range sc.Relations {
			if err := db.EnsureRelation(ddl); err != nil {
				t.Fatal(err)
			}
		}
		for _, c := range sc.Constraints {
			if err := db.DefineConstraint(c.Name, c.Cond); err != nil {
				continue // rejected repairs drop out
			}
			if db.ValidateRules() != nil {
				// Same policy as the differential harness: a repair that
				// closes a triggering cycle is rejected user error.
				if err := db.DropRule(c.Name); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, src := range sc.Seed {
			if _, err := db.Submit(src); err != nil {
				t.Fatal(err)
			}
		}

		src := sc.Txns[0]
		prog, err := lang.ParseTransaction(src, db.sch)
		if err != nil {
			t.Fatal(err)
		}
		stmts := []algebra.Stmt(prog)

		var safeRules []string
		for _, ip := range db.cat.Programs() {
			if len(ip.Plans) == 0 {
				continue
			}
			safe := true
			for _, pl := range ip.Plans {
				if !translate.AnalyzeSafety(pl.Part, db.sch, stmts).Safe() {
					safe = false
					break
				}
			}
			if safe {
				safeRules = append(safeRules, ip.RuleName)
			}
		}
		if len(safeRules) == 0 {
			return // nothing elidable: nothing to verify
		}

		res, err := db.SubmitUnchecked(src)
		if err != nil || !res.Committed {
			return // statement-level error: no state change to verify
		}
		for _, name := range safeRules {
			ip, _ := db.cat.Program(name)
			check := algebra.CloneProgram(ip.Full)
			cres, err := db.exec.ExecOptimistic(txn.Bracket(check), nil, 4)
			if err != nil {
				t.Fatalf("full check of %s: %v", name, err)
			}
			if cres.AbortReason != nil {
				t.Fatalf("analyzer declared %s safe for %q, but brute-force evaluation found a violation: %v",
					name, src, cres.AbortReason)
			}
		}
	})
}
